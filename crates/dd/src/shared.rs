//! Thread-shared node stores for the hash-consed DD managers.
//!
//! The PR 5 kernel gave every manager a private arena, per-variable unique
//! subtables and direct-mapped apply caches ([`crate::table`]). This module
//! is the concurrent counterpart (DESIGN.md §14): one [`SharedNodeTable`]
//! holding an append-only, segmented arena of nodes plus a striped-lock
//! unique table, and seqlock-protected lossy apply caches, all shared by any
//! number of [`crate::add::AddManager`] / [`crate::bdd::BddManager`] values
//! created from the same [`crate::backend::Shared`] backend.
//!
//! Design constraints, in order:
//!
//! 1. **No `unsafe`.** The whole workspace forbids it, so the structures are
//!    built from `Mutex`, `OnceLock` and plain atomics. Sylvan's lock-free
//!    CAS-on-node-words table is out of reach without unsafe; a 64-way
//!    striped mutex over the unique table plus lock-free reads everywhere
//!    else gets most of the benefit (apply recursion only takes a stripe
//!    lock when it interns a node that memoization failed to dedupe).
//! 2. **Handles stay canonical.** `(var, lo, hi)` interns to exactly one
//!    node id per store, no matter which thread asks — the stripe mutex
//!    re-probes before every insert, so a lost race returns the winner's id.
//!    Structural-equality-is-handle-equality therefore holds *across*
//!    managers sharing a store, which is what lets workers reuse each
//!    other's apply results.
//! 3. **Reads never lock.** The arena is an array of segments published via
//!    `OnceLock` (release/acquire on every slot), so `node(id)` is two
//!    acquire loads; the apply caches are per-slot seqlocks, so a probe is
//!    three loads and a fence. A torn or in-flight entry reads as a miss,
//!    which lossiness permits.
//!
//! Determinism: every value stored here is a canonical handle, so cache
//! hits, lost races and eviction order are observationally equivalent to
//! recomputation — the same argument as DESIGN.md §12, extended to
//! sharing in §14. Node *ids* do depend on thread interleaving, but no
//! result-bearing path exposes raw ids.

use std::hash::Hash;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::fasthash::{mix64, FastMap};

/// Sentinel for an empty unique-table slot / vacant cache field; never a
/// valid handle (see [`crate::table`] for the same argument).
const EMPTY: u32 = u32::MAX;

/// Terminal level marker, mirroring the managers' convention.
const TERMINAL_VAR: u32 = u32::MAX;

/// log₂ of the slots in the *first* arena segment. Segment `s` holds
/// `2^(SEG0_BITS + s)` slots, so capacity doubles per segment and a store
/// that interns only a few thousand nodes allocates only a few KB —
/// backend construction must cost microseconds, or the shared backend
/// could never hit its ≤10% single-thread overhead budget on the
/// millisecond-scale smoke gadgets.
const SEG0_BITS: usize = 10;
/// Maximum number of (geometrically sized) segments: caps a shared arena
/// just past the `u32` id space, which the `EMPTY` sentinel bounds anyway.
const SEGMENTS: usize = 22;

/// Number of unique-table stripes (power of two). The stripe is selected by
/// the low bits of the key hash, so with 64 stripes eight workers collide on
/// a lock only ~12% of the time even under uniform hammering.
const STRIPES: usize = 64;
/// log₂ of [`STRIPES`]; slot probing uses the hash bits above the stripe
/// selector so the two indices are independent.
const STRIPE_SHIFT: u32 = 6;

/// Smallest slot array a stripe materializes on first insert.
const MIN_STRIPE_SLOTS: usize = 64;

/// Slots in a per-manager `mk` memo (see [`MkMemo`]).
const MK_MEMO_SLOTS: usize = 1 << 16;

/// Default apply-cache slot budget when the backend is built without an
/// explicit limit (matches the private managers' defaults).
const DEFAULT_BINARY_SLOTS: usize = 1 << 16;

/// An append-only, lock-free-on-read arena of `N` values.
///
/// Values are pushed under an id handed out by a fetch-add counter and
/// published through a per-slot `OnceLock`, whose release/acquire pairing
/// makes the value visible to any thread that learned the id (ids only
/// travel through the stripe mutexes or through already-published nodes, so
/// a `get` can never observe an unpublished slot). Segments are allocated
/// lazily, also through `OnceLock`, so growth never moves existing slots —
/// `&N` references stay valid for the store's lifetime. Segment sizes are
/// geometric (see [`SEG0_BITS`]), which keeps both `Arena::new` and a
/// small store's footprint at a few hundred bytes.
/// One lazily allocated arena segment: a slab of per-slot `OnceLock`s.
type Segment<N> = Box<[OnceLock<N>]>;

pub(crate) struct Arena<N> {
    segments: Box<[OnceLock<Segment<N>>]>,
    len: AtomicUsize,
}

/// Maps an arena id to `(segment, offset, segment_len)` under the
/// doubling-segment layout: segment `s` covers ids
/// `[(2^s - 1) << SEG0_BITS, (2^(s+1) - 1) << SEG0_BITS)`.
#[inline]
fn locate(id: usize) -> (usize, usize, usize) {
    let k = (id >> SEG0_BITS) + 1;
    let seg = (usize::BITS - 1 - k.leading_zeros()) as usize;
    let base = ((1usize << seg) - 1) << SEG0_BITS;
    (seg, id - base, 1 << (SEG0_BITS + seg))
}

impl<N> Arena<N> {
    pub(crate) fn new() -> Self {
        Arena {
            segments: (0..SEGMENTS).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of values pushed so far (racy under concurrent pushes, exact
    /// once they quiesce).
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Appends `value`, returning its id.
    pub(crate) fn push(&self, value: N) -> u32 {
        let id = self.len.fetch_add(1, Ordering::Relaxed);
        assert!(
            id < ((1usize << SEGMENTS) - 1) << SEG0_BITS,
            "shared arena full"
        );
        let (seg, off, seg_len) = locate(id);
        let seg =
            self.segments[seg].get_or_init(|| (0..seg_len).map(|_| OnceLock::new()).collect());
        if seg[off].set(value).is_err() {
            unreachable!("arena slot {id} written twice");
        }
        id as u32
    }

    /// The value at `id`, which must have been returned by [`Arena::push`].
    #[inline]
    pub(crate) fn get(&self, id: u32) -> &N {
        let (seg, off, _) = locate(id as usize);
        let seg = self.segments[seg]
            .get()
            .expect("arena segment not published");
        seg[off].get().expect("arena slot not published")
    }
}

impl<N> std::fmt::Debug for Arena<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena").field("len", &self.len()).finish()
    }
}

/// One interned DD node: the layout both managers share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SharedNode {
    pub(crate) var: u32,
    pub(crate) lo: u32,
    pub(crate) hi: u32,
}

/// One [`NodeArena`] slot: the node fields as relaxed atomics.
struct AtomicNode {
    var: AtomicU32,
    lo: AtomicU32,
    hi: AtomicU32,
}

/// The node arena: [`Arena`]'s segment layout, specialized to
/// [`SharedNode`] with plain relaxed-atomic fields instead of a per-slot
/// `OnceLock`.
///
/// Reading a node is the single hottest shared-store operation (every
/// apply-recursion visit does it), and an `OnceLock` state check per read
/// costs enough to show up against the private backend's flat `Vec`. The
/// relaxed fields are sound because a slot is written exactly once (ids
/// come from a fetch-add) and an id only *reaches* a reader through a
/// synchronizing channel — the stripe mutex that interned the node, a
/// seqlock apply-cache slot (release write / acquire read), or a thread
/// spawn — so the writer's field stores happen-before any read of them;
/// relaxed suffices once that edge exists. The segment pointers stay
/// `OnceLock`-published (the same edge covers their initialization).
struct NodeArena {
    segments: Box<[OnceLock<Box<[AtomicNode]>>]>,
    len: AtomicUsize,
}

impl NodeArena {
    fn new() -> Self {
        NodeArena {
            segments: (0..SEGMENTS).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of nodes pushed so far (racy under concurrent pushes, exact
    /// once they quiesce).
    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Appends `node`, returning its id. Callers must publish the id
    /// through a synchronizing channel (see the type docs).
    fn push(&self, node: SharedNode) -> u32 {
        let id = self.len.fetch_add(1, Ordering::Relaxed);
        assert!(
            id < ((1usize << SEGMENTS) - 1) << SEG0_BITS,
            "shared arena full"
        );
        let (seg, off, seg_len) = locate(id);
        let seg = self.segments[seg].get_or_init(|| {
            (0..seg_len)
                .map(|_| AtomicNode {
                    var: AtomicU32::new(0),
                    lo: AtomicU32::new(0),
                    hi: AtomicU32::new(0),
                })
                .collect()
        });
        let slot = &seg[off];
        slot.var.store(node.var, Ordering::Relaxed);
        slot.lo.store(node.lo, Ordering::Relaxed);
        slot.hi.store(node.hi, Ordering::Relaxed);
        id as u32
    }

    /// The node at `id`, which must have been returned by
    /// [`NodeArena::push`] and have reached this thread through a
    /// synchronizing channel.
    #[inline]
    fn node(&self, id: u32) -> SharedNode {
        let (seg, off, _) = locate(id as usize);
        let seg = self.segments[seg]
            .get()
            .expect("arena segment not published");
        let slot = &seg[off];
        SharedNode {
            var: slot.var.load(Ordering::Relaxed),
            lo: slot.lo.load(Ordering::Relaxed),
            hi: slot.hi.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for NodeArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeArena")
            .field("len", &self.len())
            .finish()
    }
}

/// Hash of a full `(var, lo, hi)` key. Unlike the private per-variable
/// subtables, the shared table is global, so the variable joins the key.
#[inline]
fn hash_node(var: u32, lo: u32, hi: u32) -> u64 {
    mix64(((lo as u64) | ((hi as u64) << 32)) ^ (var as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// One stripe of the unique table: an open-addressed, power-of-two,
/// linearly probed set of node ids, guarded by its own mutex.
#[derive(Debug, Default)]
struct Stripe {
    slots: Vec<u32>,
    len: usize,
}

impl Stripe {
    fn probe(&self, hash: u64, arena: &NodeArena, key: SharedNode) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = ((hash >> STRIPE_SHIFT) as usize) & mask;
        loop {
            let v = self.slots[i];
            if v == EMPTY {
                return None;
            }
            if arena.node(v) == key {
                return Some(v);
            }
            i = (i + 1) & mask;
        }
    }

    fn place(slots: &mut [u32], hash: u64, value: u32) {
        let mask = slots.len() - 1;
        let mut i = ((hash >> STRIPE_SHIFT) as usize) & mask;
        while slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        slots[i] = value;
    }

    fn insert(&mut self, hash: u64, value: u32, arena: &NodeArena) {
        // Grow at 2/3 occupancy, keeping at least one slot empty for the
        // unbounded probe loop.
        if (self.len + 1) * 3 > self.slots.len() * 2 {
            self.grow(arena);
        }
        Self::place(&mut self.slots, hash, value);
        self.len += 1;
    }

    #[cold]
    fn grow(&mut self, arena: &NodeArena) {
        let new_cap = (self.slots.len() * 2).max(MIN_STRIPE_SLOTS);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        for v in old {
            if v != EMPTY {
                let n = arena.node(v);
                Self::place(&mut self.slots, hash_node(n.var, n.lo, n.hi), v);
            }
        }
    }
}

/// The shared arena plus its striped-lock unique table.
///
/// A node-budget panic ([`crate::budget::CapacityExceeded`]) must never be
/// raised while a stripe mutex is held (which would poison it for every
/// other worker), so [`SharedNodeTable::intern`] takes the caller's
/// *precomputed* budget verdict and merely declines to insert when it is
/// over — the caller raises the panic after the lock is released.
#[derive(Debug)]
pub(crate) struct SharedNodeTable {
    arena: NodeArena,
    stripes: Box<[Mutex<Stripe>]>,
}

impl SharedNodeTable {
    pub(crate) fn new() -> Self {
        SharedNodeTable {
            arena: NodeArena::new(),
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
        }
    }

    /// Appends a node without interning it — used to seed the BDD terminal
    /// nodes, which are looked up by constant id, never by key.
    pub(crate) fn seed(&self, var: u32, lo: u32, hi: u32) -> u32 {
        self.arena.push(SharedNode { var, lo, hi })
    }

    /// Total nodes in the arena (terminal seeds included).
    pub(crate) fn len(&self) -> usize {
        self.arena.len()
    }

    /// The node stored at `id`.
    #[inline]
    pub(crate) fn node(&self, id: u32) -> SharedNode {
        self.arena.node(id)
    }

    #[inline]
    fn stripe(&self, hash: u64) -> &Mutex<Stripe> {
        &self.stripes[(hash as usize) & (STRIPES - 1)]
    }

    /// Probes for `(var, lo, hi)` and interns it on a miss, all under one
    /// stripe acquisition — the managers' `mk` fast path. `over_budget` is
    /// the caller's precomputed [`crate::budget::NodeBudget::would_trip`]
    /// verdict: when true and the key is absent, returns `None` *without
    /// inserting*, and the caller raises [`crate::budget::CapacityExceeded`]
    /// after the stripe mutex is back out of scope (a panic under the lock
    /// would poison it for every worker). A probe hit ignores `over_budget`
    /// — re-finding an existing node never grows the arena.
    pub(crate) fn intern(
        &self,
        var: u32,
        lo: u32,
        hi: u32,
        over_budget: bool,
    ) -> Option<(u32, bool)> {
        let key = SharedNode { var, lo, hi };
        let h = hash_node(var, lo, hi);
        let mut stripe = self.stripe(h).lock().expect("unique-table stripe poisoned");
        if let Some(found) = stripe.probe(h, &self.arena, key) {
            return Some((found, false));
        }
        if over_budget {
            return None;
        }
        // The push happens under the stripe lock so the table never hands
        // out an id whose slot is unpublished, and a lost race never leaks
        // a dead arena slot.
        let id = self.arena.push(key);
        stripe.insert(h, id, &self.arena);
        Some((id, true))
    }

    /// Heap bytes held by the stripes' slot arrays (diagnostic; takes each
    /// stripe lock briefly).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                s.lock().expect("unique-table stripe poisoned").slots.len()
                    * std::mem::size_of::<u32>()
            })
            .sum()
    }
}

/// One seqlock-guarded cache slot: a sequence word and two data words.
///
/// Writers claim the slot by bumping `seq` to odd with a CAS (losing the
/// race skips the write — the caches are lossy), store the data relaxed,
/// and release with `seq + 2`. Readers snapshot `seq` (rejecting odd),
/// load the data, fence, and re-check `seq`; any concurrent writer makes
/// the probe a miss. No ordering beyond the slot itself is needed because
/// the data words are canonical handles, valid independent of when they
/// were produced.
struct SeqSlot {
    seq: AtomicU32,
    a: AtomicU64,
    b: AtomicU64,
}

impl SeqSlot {
    fn vacant(a: u64, b: u64) -> Self {
        SeqSlot {
            seq: AtomicU32::new(0),
            a: AtomicU64::new(a),
            b: AtomicU64::new(b),
        }
    }

    #[inline]
    fn read(&self) -> Option<(u64, u64)> {
        let v1 = self.seq.load(Ordering::Acquire);
        if v1 & 1 == 1 {
            return None;
        }
        let a = self.a.load(Ordering::Relaxed);
        let b = self.b.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != v1 {
            return None;
        }
        Some((a, b))
    }

    #[inline]
    fn write(&self, a: u64, b: u64) {
        let v = self.seq.load(Ordering::Relaxed);
        if v & 1 == 1 {
            return; // another writer owns the slot; drop the entry
        }
        if self
            .seq
            .compare_exchange(v, v | 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.a.store(a, Ordering::Relaxed);
        self.b.store(b, Ordering::Relaxed);
        self.seq.store(v.wrapping_add(2), Ordering::Release);
    }
}

impl std::fmt::Debug for SeqSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqSlot").finish()
    }
}

/// Smallest slab a shared lossy cache materializes on first put.
const INITIAL_SHARED_CACHE_SLOTS: usize = 1 << 10;

/// The slot storage behind the three shared lossy caches: direct-mapped
/// [`SeqSlot`] slabs with concurrent lazy growth.
///
/// The engines size apply caches in the megabytes, and a shared store is
/// built fresh for every run — eagerly zeroing the full slab would cost
/// tens of milliseconds, swamping the smoke gadgets that finish in a few
/// hundred microseconds. So, like the private caches' `grow`, the slab
/// starts at [`INITIAL_SHARED_CACHE_SLOTS`] and steps 8× toward the limit
/// once a generation has absorbed as many writes as it has slots. Each
/// generation is a separate `OnceLock` slab (allocated by the first writer
/// to reach it) and only the active generation is probed; stepping drops
/// the previous generation's entries, which a lossy cache may always do.
struct SeqSlots {
    gens: Box<[OnceLock<Box<[SeqSlot]>>]>,
    /// Slot count of each generation (powers of two, 8× apart, last one
    /// the configured limit).
    sizes: Box<[usize]>,
    /// Index of the generation currently probed and written.
    active: AtomicUsize,
    /// 1-in-64 sample of writes since the active generation was entered
    /// (relaxed, approximate under concurrency — it is only a growth
    /// heuristic).
    puts: AtomicUsize,
    /// `(a, b)` words of a vacant slot: an impossible key, so a probe of an
    /// untouched slot fails the caller's key comparison.
    vacant: (u64, u64),
}

impl SeqSlots {
    fn new(limit: usize, vacant: (u64, u64)) -> Self {
        debug_assert!(limit.is_power_of_two());
        let mut sizes = Vec::new();
        let mut n = INITIAL_SHARED_CACHE_SLOTS.min(limit);
        loop {
            sizes.push(n);
            if n >= limit {
                break;
            }
            n = (n * 8).min(limit);
        }
        SeqSlots {
            gens: (0..sizes.len()).map(|_| OnceLock::new()).collect(),
            sizes: sizes.into_boxed_slice(),
            active: AtomicUsize::new(0),
            puts: AtomicUsize::new(0),
            vacant,
        }
    }

    #[inline]
    fn probe(&self, hash: u64) -> Option<(u64, u64)> {
        let slab = self.gens[self.active.load(Ordering::Relaxed)].get()?;
        slab[(hash as usize) & (slab.len() - 1)].read()
    }

    #[inline]
    fn write(&self, hash: u64, a: u64, b: u64) {
        let gen = self.active.load(Ordering::Relaxed);
        let slab = self.gens[gen].get_or_init(|| {
            let (va, vb) = self.vacant;
            (0..self.sizes[gen])
                .map(|_| SeqSlot::vacant(va, vb))
                .collect()
        });
        slab[(hash as usize) & (slab.len() - 1)].write(a, b);
        // Growth pressure is *sampled* — one put in 64, gated on hash bits
        // independent of the slot index — against a threshold scaled the
        // same way, so the expected trigger point is still one write per
        // slot but the steady-state put pays only the seqlock CAS, not a
        // second shared RMW for the counter. Over- or under-counting only
        // moves the growth step, which a lossy cache tolerates. Once the
        // final generation is active even the sample is skipped.
        if gen + 1 < self.gens.len()
            && hash >> 58 == 0
            && self.puts.fetch_add(1, Ordering::Relaxed) >= slab.len() >> 6
            && self
                .active
                .compare_exchange(gen, gen + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.puts.store(0, Ordering::Relaxed);
        }
    }

    /// Heap bytes of every materialized generation.
    fn bytes(&self) -> usize {
        self.gens
            .iter()
            .filter_map(OnceLock::get)
            .map(|s| s.len() * std::mem::size_of::<SeqSlot>())
            .sum()
    }
}

impl std::fmt::Debug for SeqSlots {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqSlots")
            .field("active", &self.active.load(Ordering::Relaxed))
            .finish()
    }
}

/// Shared direct-mapped lossy cache for binary apply results.
///
/// Packing: `a = f | g << 32`, `b = r | op << 32`. A vacant slot holds
/// `op == EMPTY`, which no real operation token uses.
#[derive(Debug)]
pub(crate) struct SharedBinaryCache {
    slots: SeqSlots,
}

impl SharedBinaryCache {
    pub(crate) fn new(slot_count: usize) -> Self {
        SharedBinaryCache {
            slots: SeqSlots::new(slot_count, (0, (EMPTY as u64) << 32)),
        }
    }

    #[inline]
    fn hash(op: u32, f: u32, g: u32) -> u64 {
        let key = (f as u64) | ((g as u64) << 32);
        mix64(key ^ ((op as u64) << 17))
    }

    #[inline]
    pub(crate) fn get(&self, op: u32, f: u32, g: u32) -> Option<u32> {
        let (a, b) = self.slots.probe(Self::hash(op, f, g))?;
        let key = (f as u64) | ((g as u64) << 32);
        (a == key && (b >> 32) as u32 == op).then_some(b as u32)
    }

    #[inline]
    pub(crate) fn put(&self, op: u32, f: u32, g: u32, r: u32) {
        let a = (f as u64) | ((g as u64) << 32);
        let b = (r as u64) | ((op as u64) << 32);
        self.slots.write(Self::hash(op, f, g), a, b);
    }

    pub(crate) fn bytes(&self) -> usize {
        self.slots.bytes()
    }
}

/// Shared direct-mapped lossy cache for unary apply results.
///
/// Packing: `a = f | op << 32`, `b = r`. Vacant slots hold `a == u64::MAX`
/// (both the handle and the op are the `EMPTY` sentinel).
#[derive(Debug)]
pub(crate) struct SharedUnaryCache {
    slots: SeqSlots,
}

impl SharedUnaryCache {
    pub(crate) fn new(slot_count: usize) -> Self {
        SharedUnaryCache {
            slots: SeqSlots::new(slot_count, (u64::MAX, 0)),
        }
    }

    #[inline]
    fn hash(op: u32, f: u32) -> u64 {
        mix64((f as u64) | ((op as u64) << 32))
    }

    #[inline]
    pub(crate) fn get(&self, op: u32, f: u32) -> Option<u32> {
        let (a, b) = self.slots.probe(Self::hash(op, f))?;
        (a == (f as u64) | ((op as u64) << 32)).then_some(b as u32)
    }

    #[inline]
    pub(crate) fn put(&self, op: u32, f: u32, r: u32) {
        self.slots.write(
            Self::hash(op, f),
            (f as u64) | ((op as u64) << 32),
            r as u64,
        );
    }

    pub(crate) fn bytes(&self) -> usize {
        self.slots.bytes()
    }
}

/// Shared direct-mapped lossy cache for ternary (if-then-else) results.
///
/// Packing: `a = f | g << 32`, `b = h | r << 32`. Vacant slots hold
/// `f == EMPTY`, never a valid handle.
#[derive(Debug)]
pub(crate) struct SharedTernaryCache {
    slots: SeqSlots,
}

impl SharedTernaryCache {
    pub(crate) fn new(slot_count: usize) -> Self {
        SharedTernaryCache {
            slots: SeqSlots::new(slot_count, (EMPTY as u64, 0)),
        }
    }

    #[inline]
    fn hash(f: u32, g: u32, h: u32) -> u64 {
        let key =
            mix64((f as u64) | ((g as u64) << 32)) ^ (h as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        mix64(key)
    }

    #[inline]
    pub(crate) fn get(&self, f: u32, g: u32, h: u32) -> Option<u32> {
        let (a, b) = self.slots.probe(Self::hash(f, g, h))?;
        (a == (f as u64) | ((g as u64) << 32) && b as u32 == h).then_some((b >> 32) as u32)
    }

    #[inline]
    pub(crate) fn put(&self, f: u32, g: u32, h: u32, r: u32) {
        self.slots.write(
            Self::hash(f, g, h),
            (f as u64) | ((g as u64) << 32),
            (h as u64) | ((r as u64) << 32),
        );
    }

    pub(crate) fn bytes(&self) -> usize {
        self.slots.bytes()
    }
}

/// Shared terminal-value intern table for ADD stores.
#[derive(Debug)]
pub(crate) struct SharedTermTable<T> {
    values: Arena<T>,
    unique: Mutex<FastMap<T, u32>>,
}

impl<T: Clone + Eq + Hash> SharedTermTable<T> {
    pub(crate) fn new() -> Self {
        SharedTermTable {
            values: Arena::new(),
            unique: Mutex::new(FastMap::default()),
        }
    }

    /// Interns `value`, returning its terminal index.
    pub(crate) fn intern(&self, value: &T) -> u32 {
        let mut map = self.unique.lock().expect("terminal table poisoned");
        if let Some(&id) = map.get(value) {
            return id;
        }
        let id = self.values.push(value.clone());
        map.insert(value.clone(), id);
        id
    }

    /// The terminal value at `id`.
    #[inline]
    pub(crate) fn get(&self, id: u32) -> &T {
        self.values.get(id)
    }
}

/// Everything an [`crate::add::AddManager`] shares when running on the
/// [`crate::backend::Shared`] backend.
#[derive(Debug)]
pub(crate) struct SharedAddStore<T> {
    pub(crate) nodes: SharedNodeTable,
    pub(crate) terms: SharedTermTable<T>,
    pub(crate) binary: SharedBinaryCache,
    pub(crate) unary: SharedUnaryCache,
    /// Managers ever attached (never decremented): see
    /// [`SharedBddStore::publish`].
    managers: AtomicUsize,
}

impl<T: Clone + Eq + Hash> SharedAddStore<T> {
    /// A fresh store whose apply caches hold about `apply_cache_limit`
    /// binary slots (the private managers' proportions, eagerly allocated).
    pub(crate) fn new(apply_cache_limit: Option<usize>) -> Self {
        let limit = apply_cache_limit.unwrap_or(DEFAULT_BINARY_SLOTS);
        SharedAddStore {
            nodes: SharedNodeTable::new(),
            terms: SharedTermTable::new(),
            binary: SharedBinaryCache::new(crate::table::slots_for(limit)),
            unary: SharedUnaryCache::new(crate::table::slots_for((limit >> 4).max(16))),
            managers: AtomicUsize::new(0),
        }
    }

    /// Records one more manager attaching to this store.
    pub(crate) fn attach(&self) {
        self.managers.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether managers should publish apply results to the store-wide L2
    /// caches; see [`SharedBddStore::publish`] for the rationale.
    #[inline]
    pub(crate) fn publish(&self) -> bool {
        self.managers.load(Ordering::Relaxed) > 1
    }
}

/// Everything a [`crate::bdd::BddManager`] shares when running on the
/// [`crate::backend::Shared`] backend.
///
/// Stored `lo`/`hi` edges are the manager's packed handles: a node id with
/// the complement bit (bit 31) folded in (DESIGN.md §17). The store treats
/// them as opaque `u32` key material — canonicity of the packed form is the
/// manager's (`mk`'s) job. Seed id 0 is a dead placeholder (the
/// pre-complement-edge false terminal) and id 1 the single live terminal,
/// so `Bdd::TRUE == 1` and historical id layout are preserved. The BDD
/// negation is a handle bit flip, so no unary L2 cache is needed.
#[derive(Debug)]
pub(crate) struct SharedBddStore {
    pub(crate) nodes: SharedNodeTable,
    pub(crate) binary: SharedBinaryCache,
    pub(crate) ternary: SharedTernaryCache,
    /// Managers ever attached (never decremented): see
    /// [`SharedBddStore::publish`].
    managers: AtomicUsize,
}

impl SharedBddStore {
    /// A fresh store with the private `BddManager`'s default cache shape.
    pub(crate) fn new() -> Self {
        let nodes = SharedNodeTable::new();
        let f = nodes.seed(TERMINAL_VAR, 0, 0);
        let t = nodes.seed(TERMINAL_VAR, 1, 1);
        assert_eq!((f, t), (0, 1), "terminal seeds must be ids 0 and 1");
        SharedBddStore {
            nodes,
            binary: SharedBinaryCache::new(1 << 16),
            ternary: SharedTernaryCache::new(1 << 15),
            managers: AtomicUsize::new(0),
        }
    }

    /// Records one more manager attaching to this store.
    pub(crate) fn attach(&self) {
        self.managers.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether managers should publish apply results to the store-wide L2
    /// caches. While a single manager is attached there is provably no
    /// consumer for published entries (its own probes are already answered
    /// by the private L1), so paying the seqlock traffic is pure overhead.
    /// The count only ever grows, so once a second manager attaches
    /// publication is permanent; and because the L2 caches are lossy memo
    /// tables, skipping them can never change any result — only timing.
    #[inline]
    pub(crate) fn publish(&self) -> bool {
        self.managers.load(Ordering::Relaxed) > 1
    }
}

/// One entry of a per-manager `mk` memo.
#[derive(Debug, Clone, Copy)]
struct MkEntry {
    var: u32,
    lo: u32,
    hi: u32,
    id: u32,
}

/// A private direct-mapped memo in front of the shared unique table.
///
/// Shared node ids are stable for the store's lifetime, so a manager may
/// cache `(var, lo, hi) → id` privately and skip the stripe mutex on
/// repeat interning — the common case, since every apply-cache miss calls
/// `mk` and most `mk` calls re-find an existing node. This is the
/// "per-worker scratch" that keeps the recursion off the global locks;
/// collisions simply overwrite (a miss falls through to the real table).
#[derive(Debug)]
pub(crate) struct MkMemo {
    slots: Box<[MkEntry]>,
    /// Writes since the last growth step: the same pressure heuristic the
    /// private apply caches use.
    puts: usize,
}

impl MkMemo {
    pub(crate) fn new() -> Self {
        // Like the apply caches, the slab materializes lazily: a manager is
        // created per worker per run, and eagerly zeroing `MK_MEMO_SLOTS`
        // entries would dominate short checks.
        MkMemo {
            slots: Box::default(),
            puts: 0,
        }
    }

    /// Materializes the initial slab or steps it 8× toward
    /// [`MK_MEMO_SLOTS`]. Surviving entries are rehashed into the new slab
    /// — dropping them would send every live node back to the striped
    /// unique table for one more locked probe, a miss storm in the middle
    /// of a run.
    #[cold]
    fn grow(&mut self) {
        let n = if self.slots.is_empty() {
            // Larger than the shared caches' initial slab: a direct-mapped
            // memo evicts on collision and every eviction is a later locked
            // probe of the striped table, so headroom pays for itself well
            // before the first 8× step.
            (INITIAL_SHARED_CACHE_SLOTS << 2).min(MK_MEMO_SLOTS)
        } else {
            (self.slots.len() * 8).min(MK_MEMO_SLOTS)
        };
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                MkEntry {
                    var: TERMINAL_VAR,
                    lo: 0,
                    hi: 0,
                    id: 0,
                };
                n
            ]
            .into_boxed_slice(),
        );
        for e in old.iter().filter(|e| e.var != TERMINAL_VAR) {
            let i = self.index(e.var, e.lo, e.hi);
            self.slots[i] = *e;
        }
        self.puts = 0;
    }

    #[inline]
    fn index(&self, var: u32, lo: u32, hi: u32) -> usize {
        (hash_node(var, lo, hi) as usize) & (self.slots.len() - 1)
    }

    #[inline]
    pub(crate) fn get(&self, var: u32, lo: u32, hi: u32) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let e = self.slots[self.index(var, lo, hi)];
        (e.var == var && e.lo == lo && e.hi == hi).then_some(e.id)
    }

    #[inline]
    pub(crate) fn put(&mut self, var: u32, lo: u32, hi: u32, id: u32) {
        if self.slots.is_empty()
            || (self.puts >= self.slots.len() && self.slots.len() < MK_MEMO_SLOTS)
        {
            self.grow();
        }
        let i = self.index(var, lo, hi);
        self.slots[i] = MkEntry { var, lo, hi, id };
        self.puts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn arena_pushes_and_reads_across_threads() {
        let arena: Arena<u64> = Arena::new();
        thread::scope(|s| {
            for t in 0..8u64 {
                let arena = &arena;
                s.spawn(move || {
                    for i in 0..500u64 {
                        let v = t * 1000 + i;
                        let id = arena.push(v);
                        assert_eq!(*arena.get(id), v);
                    }
                });
            }
        });
        assert_eq!(arena.len(), 4000);
    }

    #[test]
    fn node_table_dedupes_across_threads() {
        let table = SharedNodeTable::new();
        // Every thread interns the same 300 keys; all must agree on ids.
        let ids: Vec<Vec<u32>> = thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let table = &table;
                    s.spawn(move || {
                        (0..300u32)
                            .map(|i| {
                                let (var, lo, hi) = (i % 7, i * 3, i * 5 + 1);
                                table.intern(var, lo, hi, false).expect("in budget").0
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other, "threads disagree on interned ids");
        }
        assert_eq!(table.len(), 300, "duplicates leaked into the arena");
        for (i, &id) in ids[0].iter().enumerate() {
            let i = i as u32;
            let n = table.node(id);
            assert_eq!((n.var, n.lo, n.hi), (i % 7, i * 3, i * 5 + 1));
        }
    }

    #[test]
    fn seqlock_caches_are_lossy_but_never_wrong() {
        let c = SharedBinaryCache::new(16);
        c.put(1, 10, 20, 99);
        assert_eq!(c.get(1, 10, 20), Some(99));
        assert_eq!(c.get(2, 10, 20), None);
        assert_eq!(c.get(1, 20, 10), None);
        // Hammer from 8 threads with a self-checking payload: r = f ^ g ^ op.
        thread::scope(|s| {
            for t in 0..8u32 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..5000u32 {
                        let (op, f, g) = (1 + (i % 3), i * 7 + t, i * 13);
                        c.put(op, f, g, f ^ g ^ op);
                        if let Some(r) = c.get(op, f, g) {
                            assert_eq!(r, f ^ g ^ op, "torn or mismatched entry");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn unary_and_ternary_shared_caches_round_trip() {
        let u = SharedUnaryCache::new(16);
        u.put(7, 3, 42);
        assert_eq!(u.get(7, 3), Some(42));
        assert_eq!(u.get(8, 3), None);

        let t = SharedTernaryCache::new(16);
        t.put(1, 2, 3, 4);
        assert_eq!(t.get(1, 2, 3), Some(4));
        assert_eq!(t.get(1, 3, 2), None);
        assert!(t.bytes() > 0 && u.bytes() > 0);
    }

    #[test]
    fn term_table_interns_across_threads() {
        let t: SharedTermTable<i64> = SharedTermTable::new();
        thread::scope(|s| {
            for _ in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for v in 0..100i64 {
                        let a = t.intern(&v);
                        let b = t.intern(&v);
                        assert_eq!(a, b);
                        assert_eq!(*t.get(a), v);
                    }
                });
            }
        });
    }

    #[test]
    fn mk_memo_hits_only_exact_keys() {
        let mut m = MkMemo::new();
        assert_eq!(m.get(1, 2, 3), None);
        m.put(1, 2, 3, 77);
        assert_eq!(m.get(1, 2, 3), Some(77));
        assert_eq!(m.get(1, 3, 2), None);
    }
}
