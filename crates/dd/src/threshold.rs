//! Cardinality-threshold BDD constructors.
//!
//! The non-interference "relation matrix" `T(α, ρ)` of the paper marks the
//! spectral coordinates where the Walsh matrix must vanish; its building
//! blocks are predicates of the form *"at least k of these variables are
//! set"*. These are symmetric functions with linear-size BDDs, built here by
//! dynamic programming over the variable order.
//!
//! ```
//! use walshcheck_dd::bdd::BddManager;
//! use walshcheck_dd::threshold::at_least;
//! use walshcheck_dd::var::{VarId, VarSet};
//!
//! let mut m = BddManager::new(4);
//! let vars: VarSet = (0..4).map(VarId).collect();
//! let maj = at_least(&mut m, &vars, 3);
//! assert!(m.eval(maj, 0b0111));
//! assert!(!m.eval(maj, 0b0101));
//! ```

use crate::bdd::{Bdd, BddManager};
use crate::var::VarSet;

/// BDD of "at least `k` of `vars` are 1".
///
/// For `k = 0` this is the constant true; for `k > |vars|` constant false.
pub fn at_least(m: &mut BddManager, vars: &VarSet, k: usize) -> Bdd {
    let members: Vec<_> = vars.iter().collect();
    let n = members.len();
    if k == 0 {
        return Bdd::TRUE;
    }
    if k > n {
        return Bdd::FALSE;
    }
    // row[j] = "at least j more ones among the remaining variables".
    // Process variables bottom-up.
    let mut row: Vec<Bdd> = (0..=k).map(|j| m.constant(j == 0)).collect();
    for &v in members.iter().rev() {
        let lit = m.var(v);
        let mut next = Vec::with_capacity(k + 1);
        next.push(Bdd::TRUE);
        for j in 1..=k {
            let if_one = row[j - 1];
            let if_zero = row[j];
            next.push(m.ite(lit, if_one, if_zero));
        }
        row = next;
    }
    row[k]
}

/// BDD of "at least `k` of the functions `fns` are 1".
///
/// Generalizes [`at_least`] from literals to arbitrary predicate BDDs — used
/// to build PINI relation matrices, where each "counted bit" is itself a
/// disjunction (an index appearing in any share group).
pub fn at_least_fns(m: &mut BddManager, fns: &[Bdd], k: usize) -> Bdd {
    if k == 0 {
        return Bdd::TRUE;
    }
    if k > fns.len() {
        return Bdd::FALSE;
    }
    let mut row: Vec<Bdd> = (0..=k).map(|j| m.constant(j == 0)).collect();
    for &f in fns.iter().rev() {
        let mut next = Vec::with_capacity(k + 1);
        next.push(Bdd::TRUE);
        for j in 1..=k {
            let if_one = row[j - 1];
            let if_zero = row[j];
            next.push(m.ite(f, if_one, if_zero));
        }
        row = next;
    }
    row[k]
}

/// BDD of "at most `k` of `vars` are 1".
pub fn at_most(m: &mut BddManager, vars: &VarSet, k: usize) -> Bdd {
    let above = at_least(m, vars, k + 1);
    m.not(above)
}

/// BDD of "exactly `k` of `vars` are 1".
pub fn exactly(m: &mut BddManager, vars: &VarSet, k: usize) -> Bdd {
    let ge = at_least(m, vars, k);
    let le = at_most(m, vars, k);
    m.and(ge, le)
}

/// BDD of "all of `vars` are 0".
pub fn all_zero(m: &mut BddManager, vars: &VarSet) -> Bdd {
    at_most(m, vars, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarId;

    fn vars(n: u32) -> VarSet {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn thresholds_match_popcount() {
        let mut m = BddManager::new(5);
        let vs = vars(5);
        for k in 0..=6usize {
            let ge = at_least(&mut m, &vs, k);
            let le = at_most(&mut m, &vs, k);
            let eq = exactly(&mut m, &vs, k);
            for a in 0..32u128 {
                let ones = a.count_ones() as usize;
                assert_eq!(m.eval(ge, a), ones >= k, "≥{k} at {a:b}");
                assert_eq!(m.eval(le, a), ones <= k, "≤{k} at {a:b}");
                assert_eq!(m.eval(eq, a), ones == k, "={k} at {a:b}");
            }
        }
    }

    #[test]
    fn thresholds_on_subsets() {
        let mut m = BddManager::new(6);
        let vs: VarSet = [VarId(1), VarId(3), VarId(5)].into_iter().collect();
        let ge2 = at_least(&mut m, &vs, 2);
        assert!(m.eval(ge2, 0b001010));
        assert!(!m.eval(ge2, 0b010101)); // only bit 3 hmm: bits 0,2,4 set → none... one? bit 2? not in set; check below
        assert!(m.eval(ge2, 0b101000));
        // Variables outside the set are ignored.
        assert!(m.eval(ge2, 0b001010 | 0b000101));
    }

    #[test]
    fn all_zero_is_complement_cube() {
        let mut m = BddManager::new(4);
        let vs: VarSet = [VarId(0), VarId(2)].into_iter().collect();
        let z = all_zero(&mut m, &vs);
        for a in 0..16u128 {
            assert_eq!(m.eval(z, a), a & 0b0101 == 0);
        }
    }

    #[test]
    fn degenerate_thresholds() {
        let mut m = BddManager::new(3);
        let vs = vars(3);
        assert_eq!(at_least(&mut m, &vs, 0), Bdd::TRUE);
        assert_eq!(at_least(&mut m, &vs, 4), Bdd::FALSE);
        assert_eq!(at_most(&mut m, &vs, 3), Bdd::TRUE);
        assert_eq!(at_least(&mut m, &VarSet::EMPTY, 1), Bdd::FALSE);
        assert_eq!(at_most(&mut m, &VarSet::EMPTY, 0), Bdd::TRUE);
    }

    #[test]
    fn at_least_fns_counts_predicates() {
        let mut m = BddManager::new(4);
        let a = m.var(VarId(0));
        let b = m.var(VarId(1));
        let c = m.var(VarId(2));
        let d = m.var(VarId(3));
        let ab = m.or(a, b);
        let cd = m.and(c, d);
        let fns = [ab, cd, a];
        for k in 0..=4usize {
            let f = at_least_fns(&mut m, &fns, k);
            for asg in 0..16u128 {
                let ones = [m.eval(ab, asg), m.eval(cd, asg), m.eval(a, asg)]
                    .iter()
                    .filter(|&&x| x)
                    .count();
                assert_eq!(m.eval(f, asg), ones >= k, "k={k} asg={asg:b}");
            }
        }
    }

    #[test]
    fn threshold_bdds_are_small() {
        let mut m = BddManager::new(32);
        let vs: VarSet = (0..32).map(VarId).collect();
        let f = at_least(&mut m, &vs, 16);
        // Symmetric function: O(n·k) nodes, far below 2^32.
        assert!(m.node_count(f) < 32 * 17 + 2);
    }
}
