//! # walshcheck-dd — decision diagrams for spectral verification
//!
//! An arena-based, hash-consed implementation of reduced ordered binary
//! decision diagrams ([`bdd::BddManager`]) and algebraic decision diagrams
//! ([`add::AddManager`]) in the style of CUDD, together with the spectral
//! machinery used by the probing-security verifier:
//!
//! * [`dyadic::Dyadic`] — exact dyadic rational arithmetic for normalized
//!   Walsh correlation coefficients;
//! * [`spectral`] — the Fujita Walsh–Hadamard transform on ADDs, a sparse
//!   per-BDD-node Walsh transform, and a dense reference transform;
//! * [`threshold`] — cardinality-threshold BDDs used to build the
//!   non-interference relation matrix `T(α, ρ)`;
//! * [`anf`] — sparse algebraic normal form via the Möbius transform;
//! * [`reorder`] — variable-order transfer and greedy sifting;
//! * [`dot`] — Graphviz export for debugging;
//! * [`fasthash`] — the fast multiplicative hasher behind the managers' hot
//!   tables, exported as [`FastMap`]/[`FastSet`] for other crates' hot paths.
//!
//! The managers' hot structures follow CUDD: per-variable open-addressed
//! unique subtables and fixed direct-mapped lossy apply caches (see
//! DESIGN.md §12 and the [`fasthash`] module docs).
//!
//! ## Backends
//!
//! Since 0.3 a manager's node store is selected through the sealed
//! [`backend::DdBackend`] factory trait: [`backend::Private`] (each manager
//! owns its arena and caches — the default, and the only behaviour before
//! 0.3) or [`backend::Shared`] (all managers created from one backend value
//! intern into a single concurrent store, so scheduler workers reuse each
//! other's nodes and apply results; DESIGN.md §14). The backend never
//! changes results — only speed and memory.
//!
//! ## Example
//!
//! ```
//! use walshcheck_dd::add::AddManager;
//! use walshcheck_dd::bdd::BddManager;
//! use walshcheck_dd::dyadic::Dyadic;
//! use walshcheck_dd::spectral::walsh_add;
//! use walshcheck_dd::var::VarId;
//!
//! // Spectrum of f = a ∧ b: |W(α)| = 1/2 on every coordinate.
//! let mut bdds = BddManager::new(2);
//! let a = bdds.var(VarId(0));
//! let b = bdds.var(VarId(1));
//! let f = bdds.and(a, b);
//! let mut adds = AddManager::new(2);
//! let w = walsh_add(&bdds, &mut adds, f);
//! assert_eq!(*adds.eval(w, 0b00), Dyadic::new(1, -1));
//! assert_eq!(*adds.eval(w, 0b11), Dyadic::new(-1, -1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod add;
pub mod anf;
pub mod backend;
pub mod bdd;
pub mod budget;
pub mod dot;
pub mod dyadic;
pub mod fasthash;
pub mod reorder;
mod shared;
pub mod spectral;
mod table;
pub mod threshold;
pub mod var;

pub use add::{Add, AddManager};
pub use backend::{Backend, DdBackend, DdConfig, Private, Shared};
pub use bdd::{Bdd, BddManager};
pub use budget::CapacityExceeded;
pub use dyadic::Dyadic;
pub use fasthash::{FastHasher, FastMap, FastSet};
pub use var::{VarId, VarSet};

/// The minimal import surface for typical consumers: handle types, the two
/// managers, backend selection, and the arithmetic/variable vocabulary.
///
/// ```
/// use walshcheck_dd::prelude::*;
///
/// let backend: Box<dyn DdBackend> = walshcheck_dd::backend::runtime(Backend::Private, None);
/// let mut m = backend.bdd_manager(2, &DdConfig::default());
/// let x = m.var(VarId(0));
/// let y = m.var(VarId(1));
/// assert_ne!(m.and(x, y), Bdd::FALSE);
/// ```
pub mod prelude {
    pub use crate::add::{Add, AddManager};
    pub use crate::backend::{Backend, DdBackend, DdConfig, Private, Shared};
    pub use crate::bdd::{Bdd, BddManager};
    pub use crate::budget::CapacityExceeded;
    pub use crate::dyadic::Dyadic;
    pub use crate::var::{VarId, VarSet};
}
