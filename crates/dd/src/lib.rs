//! # walshcheck-dd — decision diagrams for spectral verification
//!
//! An arena-based, hash-consed implementation of reduced ordered binary
//! decision diagrams ([`bdd::BddManager`]) and algebraic decision diagrams
//! ([`add::AddManager`]) in the style of CUDD, together with the spectral
//! machinery used by the probing-security verifier:
//!
//! * [`dyadic::Dyadic`] — exact dyadic rational arithmetic for normalized
//!   Walsh correlation coefficients;
//! * [`spectral`] — the Fujita Walsh–Hadamard transform on ADDs, a sparse
//!   per-BDD-node Walsh transform, and a dense reference transform;
//! * [`threshold`] — cardinality-threshold BDDs used to build the
//!   non-interference relation matrix `T(α, ρ)`;
//! * [`anf`] — sparse algebraic normal form via the Möbius transform;
//! * [`reorder`] — variable-order transfer and greedy sifting;
//! * [`dot`] — Graphviz export for debugging;
//! * [`fasthash`] — the fast multiplicative hasher behind the managers' hot
//!   tables, exported as [`FastMap`]/[`FastSet`] for other crates' hot paths.
//!
//! The managers' hot structures follow CUDD: per-variable open-addressed
//! unique subtables and fixed direct-mapped lossy apply caches (see
//! DESIGN.md §12 and the [`fasthash`] module docs).
//!
//! ## Example
//!
//! ```
//! use walshcheck_dd::add::AddManager;
//! use walshcheck_dd::bdd::BddManager;
//! use walshcheck_dd::dyadic::Dyadic;
//! use walshcheck_dd::spectral::walsh_add;
//! use walshcheck_dd::var::VarId;
//!
//! // Spectrum of f = a ∧ b: |W(α)| = 1/2 on every coordinate.
//! let mut bdds = BddManager::new(2);
//! let a = bdds.var(VarId(0));
//! let b = bdds.var(VarId(1));
//! let f = bdds.and(a, b);
//! let mut adds = AddManager::new(2);
//! let w = walsh_add(&bdds, &mut adds, f);
//! assert_eq!(*adds.eval(w, 0b00), Dyadic::new(1, -1));
//! assert_eq!(*adds.eval(w, 0b11), Dyadic::new(-1, -1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod add;
pub mod anf;
pub mod bdd;
pub mod budget;
pub mod dot;
pub mod dyadic;
pub mod fasthash;
pub mod reorder;
pub mod spectral;
mod table;
pub mod threshold;
pub mod var;

pub use add::{Add, AddManager};
pub use bdd::{Bdd, BddManager};
pub use budget::CapacityExceeded;
pub use dyadic::Dyadic;
pub use fasthash::{FastHasher, FastMap, FastSet};
pub use var::{VarId, VarSet};
