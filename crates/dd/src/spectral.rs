//! Walsh–Hadamard spectral transforms on decision diagrams.
//!
//! Three representations of the (normalized) Walsh spectrum
//!
//! ```text
//! W_f(α) = 2⁻ⁿ Σ_x (−1)^{f(x) ⊕ α·x}
//! ```
//!
//! are provided, matching the three engine families of the paper:
//!
//! * [`wht`] — the Fujita et al. transform (*Fast spectrum computation for
//!   logic functions using BDDs*, ISCAS '94): a butterfly recursion directly
//!   on an ADD, producing the spectrum as an ADD over the spectral
//!   coordinates. Used by the `FUJITA` engine. [`wht_with`] threads a
//!   [`WhtMemo`] so transforms of cones shared between sweep rows are
//!   computed once per sweep instead of once per row.
//! * [`walsh_sparse`] — the same recursion on a BDD but producing a sparse
//!   hash-map spectrum, memoized per BDD node in a byte-bounded
//!   [`SparseWalshCache`]. Used by the `MAP`/`MAPI` engines to obtain base
//!   spectra that are then combined by convolution.
//! * [`dense_walsh`] — the classical in-place fast WHT on a truth table;
//!   `O(n·2ⁿ)` and only suitable as a test oracle.
//!
//! Both DD-backed transforms carry a **dense fallback** (DESIGN.md §17):
//! when a cone's support spans at most `dense_cut` variables, the recursion
//! drops into a flat `i64` butterfly over the support (an exact integer
//! kernel — dyadic coefficients over a common exponent), then re-imports
//! only the nonzero coefficients. The dyadic arithmetic is exact and the
//! re-imported structures are canonical, so the fallback returns *bit-equal*
//! results to the recursion: `dense_cut` is a pure speed knob.
//!
//! All transforms agree on every function; `tests` and the crate's proptest
//! suite pin this down.

use std::rc::Rc;

use crate::add::{Add, AddManager};
use crate::bdd::{Bdd, BddManager};
use crate::dyadic::Dyadic;
use crate::fasthash::FastMap;
use crate::var::VarId;

/// Counters of a spectral memo ([`SparseWalshCache`] / [`WhtMemo`]),
/// mirroring the engine-layer prefix-cache counters so the report can
/// surface dd-layer reuse. Counters never influence results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalshCacheStats {
    /// Probes answered from the memo.
    pub hits: u64,
    /// Probes that had to compute (and then memoize) the transform.
    pub misses: u64,
    /// Entries dropped to stay inside the byte budget.
    pub evictions: u64,
    /// High-water estimated heap footprint, in bytes.
    pub peak_bytes: usize,
}

/// Normalized Walsh–Hadamard transform of an arbitrary real-valued function
/// given as an ADD: returns `G` with `G(α) = 2⁻ⁿ Σ_x g(x)·(−1)^{α·x}`.
///
/// The spectral coordinate `αᵢ` reuses the decision variable `xᵢ`.
pub fn wht(adds: &mut AddManager<Dyadic>, g: Add) -> Add {
    let mut memo = WhtMemo::new();
    wht_with(adds, g, &mut memo)
}

/// [`wht`] with a caller-held [`WhtMemo`], the node-keyed partial-WHT memo
/// that persists across sweep rows.
pub fn wht_with(adds: &mut AddManager<Dyadic>, g: Add, memo: &mut WhtMemo) -> Add {
    let n = adds.num_vars();
    if let Some(r) = wht_dense(adds, g, true, memo.dense_cut) {
        return r;
    }
    wht_rec(adds, g, 0, n, true, memo)
}

/// Un-normalized inverse transform: `g(x) = Σ_α G(α)·(−1)^{α·x}`.
///
/// Composing [`wht`] then [`inverse_wht`] is the identity; composing two
/// normalized transforms instead scales by `2⁻ⁿ`.
pub fn inverse_wht(adds: &mut AddManager<Dyadic>, g: Add) -> Add {
    let n = adds.num_vars();
    let mut memo = WhtMemo::new();
    wht_rec(adds, g, 0, n, false, &mut memo)
}

/// Node-keyed memo of partial WHT subresults, `(ADD node, level) → ADD`.
///
/// Hash-consed handles make the key exact: two rows whose sign-ADDs share a
/// cone share the transform of that cone. The memo survives across
/// [`wht_with`] calls (one per sweep row), is flushed wholesale when its
/// estimated footprint exceeds the byte budget (lossy, like the apply
/// caches — memoization affects time, never results), and must be cleared
/// by the owner whenever the underlying manager's handles are invalidated.
///
/// On the shared backend the memo is additionally backed by the run-wide
/// binary apply cache under reserved tags (L2): a transform one worker
/// computed is visible to all others, keyed by the same canonical handles.
#[derive(Debug, Default)]
pub struct WhtMemo {
    memo: FastMap<(Add, u32), Add>,
    /// Byte budget for the L1 map; 0 = unbounded.
    budget_bytes: usize,
    /// Support width at or below which transforms take the dense kernel;
    /// 0 disables it.
    dense_cut: u32,
    stats: WalshCacheStats,
}

/// Estimated bytes per `(Add, u32) → Add` memo entry, map overhead
/// included.
const WHT_ENTRY_BYTES: usize = 32;

impl WhtMemo {
    /// An unbounded memo with the dense kernel disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// A memo bounded to about `budget_bytes` (0 = unbounded) using the
    /// dense kernel for supports of at most `dense_cut` variables (0 =
    /// never).
    pub fn with_config(budget_bytes: usize, dense_cut: u32) -> Self {
        WhtMemo {
            budget_bytes,
            dense_cut,
            ..Self::default()
        }
    }

    /// The accumulated counters (they survive flushes).
    pub fn stats(&self) -> WalshCacheStats {
        self.stats
    }

    /// Estimated current heap footprint, in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.memo.len() * WHT_ENTRY_BYTES
    }

    /// Drops all memoized transforms, keeping counters and configuration.
    /// Call when the owning manager's handles are invalidated.
    pub fn clear(&mut self) {
        self.memo.clear();
    }

    fn get(&mut self, key: (Add, u32)) -> Option<Add> {
        let r = self.memo.get(&key).copied();
        if r.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        r
    }

    fn put(&mut self, key: (Add, u32), r: Add) {
        if self.budget_bytes != 0 && self.heap_bytes() + WHT_ENTRY_BYTES > self.budget_bytes {
            self.stats.evictions += self.memo.len() as u64;
            self.memo.clear();
        }
        self.memo.insert(key, r);
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.heap_bytes());
    }
}

fn wht_rec(
    adds: &mut AddManager<Dyadic>,
    g: Add,
    level: u32,
    n: u32,
    normalize: bool,
    memo: &mut WhtMemo,
) -> Add {
    if level == n {
        debug_assert!(g.is_terminal(), "non-terminal below the last level");
        return g;
    }
    if let Some(r) = memo.get((g, level)) {
        return r;
    }
    if normalize {
        if let Some(r) = adds.wht_l2_get(level, g) {
            memo.put((g, level), r);
            return r;
        }
    }
    let (g0, g1) = match adds.node_parts(g) {
        Some((v, lo, hi)) if v.0 == level => (lo, hi),
        _ => (g, g),
    };
    let t0 = wht_rec(adds, g0, level + 1, n, normalize, memo);
    let t1 = wht_rec(adds, g1, level + 1, n, normalize, memo);
    let mut sum = adds.add_op(t0, t1);
    let mut diff = adds.sub_op(t0, t1);
    if normalize {
        sum = adds.half_op(sum);
        diff = adds.half_op(diff);
    }
    let r = adds.mk(VarId(level), sum, diff);
    memo.put((g, level), r);
    if normalize {
        adds.wht_l2_put(level, g, r);
    }
    r
}

/// Dense fallback for the ADD transform: when `g`'s support spans at most
/// `dense_cut` variables, evaluate it into a flat mantissa table over the
/// support, butterfly in `i64`, and re-intern the nonzero coefficients.
/// Returns `None` (→ take the recursion) when the support is too wide or
/// the common-exponent integer representation would overflow.
///
/// The result is the canonical handle of exactly the ADD the recursion
/// would build: coefficients are exact dyadics either way, skipped
/// variables contribute no net normalization (their sum-halving cancels
/// the duplicated cofactor), and `from_sparse` + `mk` re-reduce to the
/// canonical structure.
fn wht_dense(
    adds: &mut AddManager<Dyadic>,
    g: Add,
    normalize: bool,
    dense_cut: u32,
) -> Option<Add> {
    if dense_cut == 0 {
        return None;
    }
    let support = adds.support(g);
    let s = support.len() as u32;
    if s > dense_cut || s > 24 {
        return None;
    }
    let vars: Vec<u32> = support.iter().map(|v| v.0).collect();
    let mut table: Vec<Dyadic> = vec![Dyadic::ZERO; 1usize << s];
    fill_add_table(adds, g, &vars, 0, 0, &mut table);
    // Common-exponent integer mantissas; bail out on overflow.
    let e0 = table.iter().map(Dyadic::exponent).min()?;
    let mut ints: Vec<i64> = Vec::with_capacity(table.len());
    let mut sum: u128 = 0;
    for c in &table {
        let shift = u32::try_from(c.exponent() - e0).ok()?;
        let m = i64::try_from(c.mantissa()).ok()?;
        if shift > 62 || m.unsigned_abs() > u64::MAX >> 1 >> shift {
            return None;
        }
        let m = m << shift;
        sum += u128::from(m.unsigned_abs());
        ints.push(m);
    }
    if sum > i64::MAX as u128 {
        return None;
    }
    wht_butterfly(&mut ints);
    let scale = if normalize { e0 - s as i32 } else { e0 };
    let mut entries: Vec<(u128, Dyadic)> = Vec::new();
    for (idx, &c) in ints.iter().enumerate() {
        if c != 0 {
            let mut key = 0u128;
            for (i, &b) in vars.iter().enumerate() {
                key |= ((idx as u128 >> i) & 1) << b;
            }
            entries.push((key, Dyadic::new(i128::from(c), scale)));
        }
    }
    Some(adds.from_sparse(entries, Dyadic::ZERO))
}

/// Fills `table[idx]` with `g`'s value at the support assignment encoded by
/// `idx` (bit `i` of `idx` = variable `vars[i]`).
fn fill_add_table(
    adds: &AddManager<Dyadic>,
    g: Add,
    vars: &[u32],
    i: usize,
    idx: usize,
    table: &mut [Dyadic],
) {
    if i == vars.len() {
        table[idx] = *adds.terminal_value(g).expect("support exhausted");
        return;
    }
    let (lo, hi) = match adds.node_parts(g) {
        Some((v, lo, hi)) if v.0 == vars[i] => (lo, hi),
        _ => (g, g),
    };
    fill_add_table(adds, lo, vars, i + 1, idx, table);
    fill_add_table(adds, hi, vars, i + 1, idx | 1 << i, table);
}

/// In-place unnormalized Walsh–Hadamard butterfly: the shared dense kernel
/// of [`dense_walsh`], [`walsh_sparse`]'s fallback and [`wht_with`]'s
/// fallback. Plain pairwise adds over a flat slice — the pattern LLVM
/// auto-vectorizes; no intrinsics, no new deps.
fn wht_butterfly(v: &mut [i64]) {
    let mut h = 1;
    while h < v.len() {
        let mut base = 0;
        while base < v.len() {
            for i in base..base + h {
                let (a, b) = (v[i], v[i + h]);
                v[i] = a + b;
                v[i + h] = a - b;
            }
            base += h * 2;
        }
        h *= 2;
    }
}

/// The normalized Walsh spectrum of the Boolean function `f` as an ADD over
/// the spectral coordinates (the sign encoding `(−1)^f` is transformed).
pub fn walsh_add(bdds: &BddManager, adds: &mut AddManager<Dyadic>, f: Bdd) -> Add {
    assert_eq!(bdds.num_vars(), adds.num_vars(), "mismatched domains");
    let sign = adds.from_bdd(bdds, f, Dyadic::MINUS_ONE, Dyadic::ONE);
    wht(adds, sign)
}

/// The sign encoding `(−1)^f` of a Boolean function as an ADD.
pub fn sign_add(bdds: &BddManager, adds: &mut AddManager<Dyadic>, f: Bdd) -> Add {
    adds.from_bdd(bdds, f, Dyadic::MINUS_ONE, Dyadic::ONE)
}

/// Estimated bytes of one memoized sparse spectrum with `len` lines.
fn sparse_entry_bytes(len: usize) -> usize {
    len * 48 + 64
}

/// Memoization storage for [`walsh_sparse`], reusable across calls on the
/// same [`BddManager`] so that shared subgraphs are only transformed once.
///
/// The cache can be byte-bounded ([`SparseWalshCache::with_config`]): when
/// the estimated footprint exceeds the budget, least-recently-used entries
/// are evicted down to 7/8 of the budget (the engine prefix-cache policy).
/// Eviction only forces recomputation — every memo entry is the exact
/// spectrum of its node, so results are identical at any budget.
#[derive(Debug, Default)]
pub struct SparseWalshCache {
    memo: FastMap<Bdd, (Rc<FastMap<u128, Dyadic>>, u64)>,
    /// Monotone probe counter backing the LRU ticks.
    tick: u64,
    /// Estimated bytes held; tracked incrementally.
    bytes: usize,
    /// Byte budget; 0 = unbounded.
    budget_bytes: usize,
    /// Support width at or below which a cone's spectrum is produced by the
    /// dense kernel instead of the per-node butterfly merge; 0 disables.
    dense_cut: u32,
    stats: WalshCacheStats,
}

impl SparseWalshCache {
    /// Creates an unbounded cache with the dense kernel disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache bounded to about `budget_bytes` (0 = unbounded)
    /// that uses the dense kernel for supports of at most `dense_cut`
    /// variables (0 = never).
    pub fn with_config(budget_bytes: usize, dense_cut: u32) -> Self {
        SparseWalshCache {
            budget_bytes,
            dense_cut,
            ..Self::default()
        }
    }

    /// Number of memoized BDD nodes.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// The accumulated counters (they survive evictions).
    pub fn stats(&self) -> WalshCacheStats {
        self.stats
    }

    /// Estimated current heap footprint, in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.bytes
    }

    /// Drops all entries, keeping counters and configuration. Call when
    /// the owning manager's handles are invalidated.
    pub fn clear(&mut self) {
        self.memo.clear();
        self.bytes = 0;
    }

    fn get(&mut self, f: Bdd) -> Option<Rc<FastMap<u128, Dyadic>>> {
        self.tick += 1;
        let tick = self.tick;
        match self.memo.get_mut(&f) {
            Some((rc, t)) => {
                *t = tick;
                self.stats.hits += 1;
                Some(Rc::clone(rc))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, f: Bdd, rc: Rc<FastMap<u128, Dyadic>>) {
        self.tick += 1;
        self.bytes += sparse_entry_bytes(rc.len());
        self.memo.insert(f, (rc, self.tick));
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.bytes);
        if self.budget_bytes != 0 && self.bytes > self.budget_bytes {
            self.evict_to(self.budget_bytes - self.budget_bytes / 8);
        }
    }

    /// Evicts least-recently-used entries until at most `target` bytes
    /// remain (the newest entry is always kept).
    fn evict_to(&mut self, target: usize) {
        let mut by_age: Vec<(u64, Bdd, usize)> = self
            .memo
            .iter()
            .map(|(&f, (rc, t))| (*t, f, sparse_entry_bytes(rc.len())))
            .collect();
        by_age.sort_unstable();
        for (tick, f, entry_bytes) in by_age {
            if self.bytes <= target || tick == self.tick {
                break;
            }
            self.memo.remove(&f);
            self.bytes -= entry_bytes;
            self.stats.evictions += 1;
        }
    }
}

/// Sparse normalized Walsh spectrum of `f`: a map from spectral coordinate
/// `α` (bit `i` = variable `i`) to the non-zero coefficient `W_f(α)`.
///
/// Coefficients on variables outside `f`'s support are zero and never appear
/// as keys, so the map size is bounded by `2^|support(f)|` regardless of the
/// manager's width.
pub fn walsh_sparse(
    bdds: &BddManager,
    f: Bdd,
    cache: &mut SparseWalshCache,
) -> Rc<FastMap<u128, Dyadic>> {
    if f == Bdd::FALSE {
        return Rc::new([(0u128, Dyadic::ONE)].into_iter().collect());
    }
    if f == Bdd::TRUE {
        return Rc::new([(0u128, Dyadic::MINUS_ONE)].into_iter().collect());
    }
    if let Some(r) = cache.get(f) {
        return r;
    }
    if let Some(rc) = walsh_sparse_dense(bdds, f, cache.dense_cut) {
        cache.put(f, Rc::clone(&rc));
        return rc;
    }
    let (var, lo, hi) = bdds.node(f).expect("non-terminal");
    let w0 = walsh_sparse(bdds, lo, cache);
    let w1 = walsh_sparse(bdds, hi, cache);
    let mut out: FastMap<u128, Dyadic> =
        FastMap::with_capacity_and_hasher(w0.len() + w1.len(), Default::default());
    let bit = 1u128 << var.0;
    for (&k, &c0) in w0.iter() {
        let c1 = w1.get(&k).copied().unwrap_or(Dyadic::ZERO);
        let sum = (c0 + c1).half();
        let diff = (c0 - c1).half();
        if !sum.is_zero() {
            out.insert(k, sum);
        }
        if !diff.is_zero() {
            out.insert(k | bit, diff);
        }
    }
    for (&k, &c1) in w1.iter() {
        if w0.contains_key(&k) {
            continue;
        }
        let sum = c1.half();
        if !sum.is_zero() {
            out.insert(k, sum);
            out.insert(k | bit, -sum);
        }
    }
    let rc = Rc::new(out);
    cache.put(f, Rc::clone(&rc));
    rc
}

/// Dense fallback for the sparse transform: evaluate the sign table of `f`
/// over its support straight off the BDD, butterfly in `i64`, and keep the
/// nonzero lines. Signs are ±1, so the integer kernel never overflows for
/// `s ≤ 24`. Returns `None` when the support exceeds `dense_cut` (→ take
/// the per-node merge). The resulting map is exactly the recursion's
/// (same keys, same canonical dyadics) — only the time to build it
/// differs.
fn walsh_sparse_dense(
    bdds: &BddManager,
    f: Bdd,
    dense_cut: u32,
) -> Option<Rc<FastMap<u128, Dyadic>>> {
    if dense_cut == 0 {
        return None;
    }
    let support = bdds.support(f);
    let s = support.len() as u32;
    if s > dense_cut || s > 24 {
        return None;
    }
    let vars: Vec<u32> = support.iter().map(|v| v.0).collect();
    let mut table: Vec<i64> = vec![0; 1usize << s];
    fill_sign_table(bdds, f, &vars, 0, 0, &mut table);
    wht_butterfly(&mut table);
    let scale = -(s as i32);
    let mut out: FastMap<u128, Dyadic> = FastMap::default();
    for (idx, &c) in table.iter().enumerate() {
        if c != 0 {
            let mut key = 0u128;
            for (i, &b) in vars.iter().enumerate() {
                key |= ((idx as u128 >> i) & 1) << b;
            }
            out.insert(key, Dyadic::new(i128::from(c), scale));
        }
    }
    Some(Rc::new(out))
}

/// Fills `table[idx]` with `(−1)^{f}` at the support assignment encoded by
/// `idx` (bit `i` of `idx` = variable `vars[i]`).
fn fill_sign_table(
    bdds: &BddManager,
    f: Bdd,
    vars: &[u32],
    i: usize,
    idx: usize,
    table: &mut [i64],
) {
    if i == vars.len() {
        table[idx] = if f == Bdd::TRUE { -1 } else { 1 };
        debug_assert!(f.is_const(), "support exhausted");
        return;
    }
    let (lo, hi) = match bdds.node(f) {
        Some((v, lo, hi)) if v.0 == vars[i] => (lo, hi),
        _ => (f, f),
    };
    fill_sign_table(bdds, lo, vars, i + 1, idx, table);
    fill_sign_table(bdds, hi, vars, i + 1, idx | 1 << i, table);
}

/// Reference dense WHT: normalized spectrum of a truth table.
///
/// `bits[x]` is `f(x)` with `x` read as the assignment (bit `i` = variable
/// `i`). The length must be a power of two.
///
/// # Panics
///
/// Panics if `bits.len()` is not a power of two.
pub fn dense_walsh(bits: &[bool]) -> Vec<Dyadic> {
    assert!(
        bits.len().is_power_of_two(),
        "truth table length must be 2^n"
    );
    let mut v: Vec<i64> = bits.iter().map(|&b| if b { -1 } else { 1 }).collect();
    wht_butterfly(&mut v);
    let log = v.len().trailing_zeros() as i32;
    v.into_iter()
        .map(|c| Dyadic::new(i128::from(c), -log))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarSet;

    fn truth_table(bdds: &BddManager, f: Bdd) -> Vec<bool> {
        let n = bdds.num_vars();
        (0..1u128 << n).map(|a| bdds.eval(f, a)).collect()
    }

    fn check_all_transforms_agree(bdds: &BddManager, adds: &mut AddManager<Dyadic>, f: Bdd) {
        let n = bdds.num_vars();
        let dense = dense_walsh(&truth_table(bdds, f));
        let spectrum_add = walsh_add(bdds, adds, f);
        let mut cache = SparseWalshCache::new();
        let sparse = walsh_sparse(bdds, f, &mut cache);
        for alpha in 0..1u128 << n {
            let expect = dense[alpha as usize];
            assert_eq!(*adds.eval(spectrum_add, alpha), expect, "ADD at α={alpha}");
            let got = sparse.get(&alpha).copied().unwrap_or(Dyadic::ZERO);
            assert_eq!(got, expect, "sparse at α={alpha}");
        }
    }

    #[test]
    fn spectrum_of_constants() {
        let b = BddManager::new(3);
        let mut a = AddManager::new(3);
        check_all_transforms_agree(&b, &mut a, Bdd::TRUE);
        check_all_transforms_agree(&b, &mut a, Bdd::FALSE);
        let t = b.constant(true);
        let mut cache = SparseWalshCache::new();
        let s = walsh_sparse(&b, t, &mut cache);
        assert_eq!(s.get(&0), Some(&Dyadic::MINUS_ONE));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn spectrum_of_literal_and_xor() {
        let mut b = BddManager::new(3);
        let mut a = AddManager::new(3);
        let x = b.var(VarId(0));
        check_all_transforms_agree(&b, &mut a, x);
        let vars: VarSet = (0..3).map(VarId).collect();
        let p = b.parity(vars);
        check_all_transforms_agree(&b, &mut a, p);
        // Parity has a single spectral line at α = 111 where f(x) ⊕ α·x ≡ 0.
        let mut cache = SparseWalshCache::new();
        let s = walsh_sparse(&b, p, &mut cache);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&0b111), Some(&Dyadic::ONE));
    }

    #[test]
    fn spectrum_of_and_or_majority() {
        let mut b = BddManager::new(3);
        let mut a = AddManager::new(3);
        let x = b.var(VarId(0));
        let y = b.var(VarId(1));
        let z = b.var(VarId(2));
        let xy = b.and(x, y);
        check_all_transforms_agree(&b, &mut a, xy);
        let or3 = b.or(xy, z);
        check_all_transforms_agree(&b, &mut a, or3);
        let yz = b.and(y, z);
        let xz = b.and(x, z);
        let t = b.or(xy, yz);
        let maj = b.or(t, xz);
        check_all_transforms_agree(&b, &mut a, maj);
    }

    #[test]
    fn masked_and_spectrum_has_no_secret_line() {
        // f = (a ∧ b) ⊕ r is uncorrelated with every α not involving r.
        let mut b = BddManager::new(3);
        let a_ = b.var(VarId(0));
        let b_ = b.var(VarId(1));
        let r = b.var(VarId(2));
        let ab = b.and(a_, b_);
        let f = b.xor(ab, r);
        let mut cache = SparseWalshCache::new();
        let s = walsh_sparse(&b, f, &mut cache);
        for (&alpha, c) in s.iter() {
            assert!(!c.is_zero());
            assert!(
                alpha >> 2 & 1 == 1,
                "entry at α={alpha:b} without the mask bit"
            );
        }
    }

    #[test]
    fn parseval_holds_for_sparse_spectra() {
        let mut b = BddManager::new(4);
        let w = b.var(VarId(0));
        let x = b.var(VarId(1));
        let y = b.var(VarId(2));
        let z = b.var(VarId(3));
        let wx = b.and(w, x);
        let yz = b.xor(y, z);
        let f = b.or(wx, yz);
        let mut cache = SparseWalshCache::new();
        let s = walsh_sparse(&b, f, &mut cache);
        let energy: Dyadic = s.values().map(|c| *c * *c).sum();
        assert_eq!(energy, Dyadic::ONE);
    }

    #[test]
    fn inverse_wht_round_trips() {
        let mut b = BddManager::new(3);
        let mut a = AddManager::new(3);
        let x = b.var(VarId(0));
        let y = b.var(VarId(1));
        let f = b.nand(x, y);
        let sign = sign_add(&b, &mut a, f);
        let spec = wht(&mut a, sign);
        let back = inverse_wht(&mut a, spec);
        assert_eq!(back, sign);
    }

    #[test]
    fn dense_walsh_small_cases() {
        // f(x) = x on one variable: W(0)=0, W(1)=1... with sign convention
        // W(1) = ½((−1)^0·(−1)^0 + (−1)^1·(−1)^1) = 1.
        let s = dense_walsh(&[false, true]);
        assert_eq!(s[0], Dyadic::ZERO);
        assert_eq!(s[1], Dyadic::ONE);
        // AND of two variables.
        let s = dense_walsh(&[false, false, false, true]);
        assert_eq!(s[0], Dyadic::new(1, -1));
        assert_eq!(s[0b11], Dyadic::new(-1, -1));
    }

    #[test]
    fn cache_is_reused_across_functions() {
        let mut b = BddManager::new(3);
        let x = b.var(VarId(0));
        let y = b.var(VarId(1));
        let f = b.and(x, y);
        let g = b.or(f, x);
        let mut cache = SparseWalshCache::new();
        let _ = walsh_sparse(&b, f, &mut cache);
        let filled = cache.len();
        assert!(filled > 0);
        let _ = walsh_sparse(&b, g, &mut cache);
        assert!(cache.len() >= filled);
        let stats = cache.stats();
        assert!(stats.misses >= filled as u64);
        assert_eq!(stats.evictions, 0, "unbounded cache never evicts");
    }

    #[test]
    fn dense_fallback_matches_recursion_exactly() {
        // Same functions transformed through a dense-enabled cache and a
        // plain one must yield identical maps (and the ADD path identical
        // handles within one manager).
        let mut b = BddManager::new(6);
        let mut funcs = Vec::new();
        for (i, j, k) in [(0u32, 1u32, 2u32), (1, 3, 5), (0, 2, 4), (3, 4, 5)] {
            let x = b.var(VarId(i));
            let y = b.var(VarId(j));
            let z = b.var(VarId(k));
            let xy = b.and(x, y);
            funcs.push(b.xor(xy, z));
            funcs.push(b.or(xy, z));
        }
        let mut plain = SparseWalshCache::new();
        let mut dense = SparseWalshCache::with_config(0, 12);
        let mut adds: AddManager<Dyadic> = AddManager::new(6);
        let mut memo_plain = WhtMemo::new();
        let mut memo_dense = WhtMemo::with_config(0, 12);
        for &f in &funcs {
            let a = walsh_sparse(&b, f, &mut plain);
            let c = walsh_sparse(&b, f, &mut dense);
            assert_eq!(*a, *c, "sparse maps must be equal");
            let sign = sign_add(&b, &mut adds, f);
            let w1 = wht_with(&mut adds, sign, &mut memo_plain);
            let w2 = wht_with(&mut adds, sign, &mut memo_dense);
            assert_eq!(w1, w2, "ADD spectra must be the same canonical handle");
        }
    }

    #[test]
    fn wht_memo_is_reused_across_rows_and_flushes_on_budget() {
        let mut b = BddManager::new(5);
        let mut adds: AddManager<Dyadic> = AddManager::new(5);
        let x = b.var(VarId(0));
        let y = b.var(VarId(1));
        let z = b.var(VarId(4));
        let xy = b.and(x, y);
        let f = b.xor(xy, z);
        let g = b.or(xy, z);
        let mut memo = WhtMemo::new();
        let sf = sign_add(&b, &mut adds, f);
        let sg = sign_add(&b, &mut adds, g);
        let wf = wht_with(&mut adds, sf, &mut memo);
        let after_first = memo.stats();
        assert!(after_first.misses > 0);
        // Re-transforming the same row is pure hits.
        let wf2 = wht_with(&mut adds, sf, &mut memo);
        assert_eq!(wf, wf2);
        let after_repeat = memo.stats();
        assert_eq!(after_repeat.misses, after_first.misses);
        assert!(after_repeat.hits > after_first.hits);
        // A different row sharing cones still gets some hits.
        let _ = wht_with(&mut adds, sg, &mut memo);
        // A tiny budget forces flushes but not wrong results. A fresh
        // manager sidesteps the L2 apply-cache, which would otherwise
        // answer before the L1 ever fills.
        let mut adds2: AddManager<Dyadic> = AddManager::new(5);
        let mut tiny = WhtMemo::with_config(WHT_ENTRY_BYTES * 2, 0);
        let sf2 = sign_add(&b, &mut adds2, f);
        let wf3 = wht_with(&mut adds2, sf2, &mut tiny);
        for alpha in 0..1u128 << 5 {
            assert_eq!(adds.eval(wf, alpha), adds2.eval(wf3, alpha));
        }
        assert!(tiny.stats().evictions > 0);
    }

    #[test]
    fn bounded_sparse_cache_evicts_lru_and_keeps_results() {
        let mut b = BddManager::new(8);
        let mut funcs = Vec::new();
        for v in 0..7u32 {
            let x = b.var(VarId(v));
            let y = b.var(VarId(v + 1));
            let xy = b.and(x, y);
            let z = b.var(VarId((v + 3) % 8));
            funcs.push(b.xor(xy, z));
        }
        let mut unbounded = SparseWalshCache::new();
        let mut bounded = SparseWalshCache::with_config(sparse_entry_bytes(8) * 4, 0);
        for &f in &funcs {
            let a = walsh_sparse(&b, f, &mut unbounded);
            let c = walsh_sparse(&b, f, &mut bounded);
            assert_eq!(*a, *c);
        }
        let stats = bounded.stats();
        assert!(stats.evictions > 0, "budget must force evictions");
        assert!(bounded.heap_bytes() <= sparse_entry_bytes(8) * 4);
        assert!(stats.peak_bytes > 0);
        // Evicted entries recompute correctly.
        for &f in &funcs {
            let a = walsh_sparse(&b, f, &mut unbounded);
            let c = walsh_sparse(&b, f, &mut bounded);
            assert_eq!(*a, *c);
        }
    }
}
