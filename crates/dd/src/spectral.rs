//! Walsh–Hadamard spectral transforms on decision diagrams.
//!
//! Three representations of the (normalized) Walsh spectrum
//!
//! ```text
//! W_f(α) = 2⁻ⁿ Σ_x (−1)^{f(x) ⊕ α·x}
//! ```
//!
//! are provided, matching the three engine families of the paper:
//!
//! * [`wht`] — the Fujita et al. transform (*Fast spectrum computation for
//!   logic functions using BDDs*, ISCAS '94): a butterfly recursion directly
//!   on an ADD, producing the spectrum as an ADD over the spectral
//!   coordinates. Used by the `FUJITA` engine.
//! * [`walsh_sparse`] — the same recursion on a BDD but producing a sparse
//!   hash-map spectrum, memoized per BDD node. Used by the `MAP`/`MAPI`
//!   engines to obtain base spectra that are then combined by convolution.
//! * [`dense_walsh`] — the classical in-place fast WHT on a truth table;
//!   `O(n·2ⁿ)` and only suitable as a test oracle.
//!
//! All transforms agree on every function; `tests` and the crate's proptest
//! suite pin this down.

use std::rc::Rc;

use crate::add::{Add, AddManager};
use crate::bdd::{Bdd, BddManager};
use crate::dyadic::Dyadic;
use crate::fasthash::FastMap;
use crate::var::VarId;

/// Normalized Walsh–Hadamard transform of an arbitrary real-valued function
/// given as an ADD: returns `G` with `G(α) = 2⁻ⁿ Σ_x g(x)·(−1)^{α·x}`.
///
/// The spectral coordinate `αᵢ` reuses the decision variable `xᵢ`.
pub fn wht(adds: &mut AddManager<Dyadic>, g: Add) -> Add {
    let n = adds.num_vars();
    let mut memo: FastMap<(Add, u32), Add> = FastMap::default();
    wht_rec(adds, g, 0, n, true, &mut memo)
}

/// Un-normalized inverse transform: `g(x) = Σ_α G(α)·(−1)^{α·x}`.
///
/// Composing [`wht`] then [`inverse_wht`] is the identity; composing two
/// normalized transforms instead scales by `2⁻ⁿ`.
pub fn inverse_wht(adds: &mut AddManager<Dyadic>, g: Add) -> Add {
    let n = adds.num_vars();
    let mut memo: FastMap<(Add, u32), Add> = FastMap::default();
    wht_rec(adds, g, 0, n, false, &mut memo)
}

fn wht_rec(
    adds: &mut AddManager<Dyadic>,
    g: Add,
    level: u32,
    n: u32,
    normalize: bool,
    memo: &mut FastMap<(Add, u32), Add>,
) -> Add {
    if level == n {
        debug_assert!(g.is_terminal(), "non-terminal below the last level");
        return g;
    }
    if let Some(&r) = memo.get(&(g, level)) {
        return r;
    }
    let (g0, g1) = match adds.node_parts(g) {
        Some((v, lo, hi)) if v.0 == level => (lo, hi),
        _ => (g, g),
    };
    let t0 = wht_rec(adds, g0, level + 1, n, normalize, memo);
    let t1 = wht_rec(adds, g1, level + 1, n, normalize, memo);
    let mut sum = adds.add_op(t0, t1);
    let mut diff = adds.sub_op(t0, t1);
    if normalize {
        sum = adds.half_op(sum);
        diff = adds.half_op(diff);
    }
    let r = adds.mk(VarId(level), sum, diff);
    memo.insert((g, level), r);
    r
}

/// The normalized Walsh spectrum of the Boolean function `f` as an ADD over
/// the spectral coordinates (the sign encoding `(−1)^f` is transformed).
pub fn walsh_add(bdds: &BddManager, adds: &mut AddManager<Dyadic>, f: Bdd) -> Add {
    assert_eq!(bdds.num_vars(), adds.num_vars(), "mismatched domains");
    let sign = adds.from_bdd(bdds, f, Dyadic::MINUS_ONE, Dyadic::ONE);
    wht(adds, sign)
}

/// The sign encoding `(−1)^f` of a Boolean function as an ADD.
pub fn sign_add(bdds: &BddManager, adds: &mut AddManager<Dyadic>, f: Bdd) -> Add {
    adds.from_bdd(bdds, f, Dyadic::MINUS_ONE, Dyadic::ONE)
}

/// Memoization storage for [`walsh_sparse`], reusable across calls on the
/// same [`BddManager`] so that shared subgraphs are only transformed once.
#[derive(Debug, Default)]
pub struct SparseWalshCache {
    memo: FastMap<Bdd, Rc<FastMap<u128, Dyadic>>>,
}

impl SparseWalshCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized BDD nodes.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }
}

/// Sparse normalized Walsh spectrum of `f`: a map from spectral coordinate
/// `α` (bit `i` = variable `i`) to the non-zero coefficient `W_f(α)`.
///
/// Coefficients on variables outside `f`'s support are zero and never appear
/// as keys, so the map size is bounded by `2^|support(f)|` regardless of the
/// manager's width.
pub fn walsh_sparse(
    bdds: &BddManager,
    f: Bdd,
    cache: &mut SparseWalshCache,
) -> Rc<FastMap<u128, Dyadic>> {
    if f == Bdd::FALSE {
        return Rc::new([(0u128, Dyadic::ONE)].into_iter().collect());
    }
    if f == Bdd::TRUE {
        return Rc::new([(0u128, Dyadic::MINUS_ONE)].into_iter().collect());
    }
    if let Some(r) = cache.memo.get(&f) {
        return Rc::clone(r);
    }
    let (var, lo, hi) = bdds.node(f).expect("non-terminal");
    let w0 = walsh_sparse(bdds, lo, cache);
    let w1 = walsh_sparse(bdds, hi, cache);
    let mut out: FastMap<u128, Dyadic> =
        FastMap::with_capacity_and_hasher(w0.len() + w1.len(), Default::default());
    let bit = 1u128 << var.0;
    for (&k, &c0) in w0.iter() {
        let c1 = w1.get(&k).copied().unwrap_or(Dyadic::ZERO);
        let sum = (c0 + c1).half();
        let diff = (c0 - c1).half();
        if !sum.is_zero() {
            out.insert(k, sum);
        }
        if !diff.is_zero() {
            out.insert(k | bit, diff);
        }
    }
    for (&k, &c1) in w1.iter() {
        if w0.contains_key(&k) {
            continue;
        }
        let sum = c1.half();
        if !sum.is_zero() {
            out.insert(k, sum);
            out.insert(k | bit, -sum);
        }
    }
    let rc = Rc::new(out);
    cache.memo.insert(f, Rc::clone(&rc));
    rc
}

/// Reference dense WHT: normalized spectrum of a truth table.
///
/// `bits[x]` is `f(x)` with `x` read as the assignment (bit `i` = variable
/// `i`). The length must be a power of two.
///
/// # Panics
///
/// Panics if `bits.len()` is not a power of two.
pub fn dense_walsh(bits: &[bool]) -> Vec<Dyadic> {
    assert!(
        bits.len().is_power_of_two(),
        "truth table length must be 2^n"
    );
    let mut v: Vec<i64> = bits.iter().map(|&b| if b { -1 } else { 1 }).collect();
    let n = v.len();
    let mut h = 1;
    while h < n {
        for i in (0..n).step_by(h * 2) {
            for j in i..i + h {
                let (a, b) = (v[j], v[j + h]);
                v[j] = a + b;
                v[j + h] = a - b;
            }
        }
        h *= 2;
    }
    let log = n.trailing_zeros() as i32;
    v.into_iter()
        .map(|c| Dyadic::new(c as i128, -log))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarSet;

    fn truth_table(bdds: &BddManager, f: Bdd) -> Vec<bool> {
        let n = bdds.num_vars();
        (0..1u128 << n).map(|a| bdds.eval(f, a)).collect()
    }

    fn check_all_transforms_agree(bdds: &BddManager, adds: &mut AddManager<Dyadic>, f: Bdd) {
        let n = bdds.num_vars();
        let dense = dense_walsh(&truth_table(bdds, f));
        let spectrum_add = walsh_add(bdds, adds, f);
        let mut cache = SparseWalshCache::new();
        let sparse = walsh_sparse(bdds, f, &mut cache);
        for alpha in 0..1u128 << n {
            let expect = dense[alpha as usize];
            assert_eq!(*adds.eval(spectrum_add, alpha), expect, "ADD at α={alpha}");
            let got = sparse.get(&alpha).copied().unwrap_or(Dyadic::ZERO);
            assert_eq!(got, expect, "sparse at α={alpha}");
        }
    }

    #[test]
    fn spectrum_of_constants() {
        let b = BddManager::new(3);
        let mut a = AddManager::new(3);
        check_all_transforms_agree(&b, &mut a, Bdd::TRUE);
        check_all_transforms_agree(&b, &mut a, Bdd::FALSE);
        let t = b.constant(true);
        let mut cache = SparseWalshCache::new();
        let s = walsh_sparse(&b, t, &mut cache);
        assert_eq!(s.get(&0), Some(&Dyadic::MINUS_ONE));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn spectrum_of_literal_and_xor() {
        let mut b = BddManager::new(3);
        let mut a = AddManager::new(3);
        let x = b.var(VarId(0));
        check_all_transforms_agree(&b, &mut a, x);
        let vars: VarSet = (0..3).map(VarId).collect();
        let p = b.parity(vars);
        check_all_transforms_agree(&b, &mut a, p);
        // Parity has a single spectral line at α = 111 where f(x) ⊕ α·x ≡ 0.
        let mut cache = SparseWalshCache::new();
        let s = walsh_sparse(&b, p, &mut cache);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&0b111), Some(&Dyadic::ONE));
    }

    #[test]
    fn spectrum_of_and_or_majority() {
        let mut b = BddManager::new(3);
        let mut a = AddManager::new(3);
        let x = b.var(VarId(0));
        let y = b.var(VarId(1));
        let z = b.var(VarId(2));
        let xy = b.and(x, y);
        check_all_transforms_agree(&b, &mut a, xy);
        let or3 = b.or(xy, z);
        check_all_transforms_agree(&b, &mut a, or3);
        let yz = b.and(y, z);
        let xz = b.and(x, z);
        let t = b.or(xy, yz);
        let maj = b.or(t, xz);
        check_all_transforms_agree(&b, &mut a, maj);
    }

    #[test]
    fn masked_and_spectrum_has_no_secret_line() {
        // f = (a ∧ b) ⊕ r is uncorrelated with every α not involving r.
        let mut b = BddManager::new(3);
        let a_ = b.var(VarId(0));
        let b_ = b.var(VarId(1));
        let r = b.var(VarId(2));
        let ab = b.and(a_, b_);
        let f = b.xor(ab, r);
        let mut cache = SparseWalshCache::new();
        let s = walsh_sparse(&b, f, &mut cache);
        for (&alpha, c) in s.iter() {
            assert!(!c.is_zero());
            assert!(
                alpha >> 2 & 1 == 1,
                "entry at α={alpha:b} without the mask bit"
            );
        }
    }

    #[test]
    fn parseval_holds_for_sparse_spectra() {
        let mut b = BddManager::new(4);
        let w = b.var(VarId(0));
        let x = b.var(VarId(1));
        let y = b.var(VarId(2));
        let z = b.var(VarId(3));
        let wx = b.and(w, x);
        let yz = b.xor(y, z);
        let f = b.or(wx, yz);
        let mut cache = SparseWalshCache::new();
        let s = walsh_sparse(&b, f, &mut cache);
        let energy: Dyadic = s.values().map(|c| *c * *c).sum();
        assert_eq!(energy, Dyadic::ONE);
    }

    #[test]
    fn inverse_wht_round_trips() {
        let mut b = BddManager::new(3);
        let mut a = AddManager::new(3);
        let x = b.var(VarId(0));
        let y = b.var(VarId(1));
        let f = b.nand(x, y);
        let sign = sign_add(&b, &mut a, f);
        let spec = wht(&mut a, sign);
        let back = inverse_wht(&mut a, spec);
        assert_eq!(back, sign);
    }

    #[test]
    #[allow(unused_mut)]
    fn dense_walsh_small_cases() {
        // f(x) = x on one variable: W(0)=0, W(1)=1... with sign convention
        // W(1) = ½((−1)^0·(−1)^0 + (−1)^1·(−1)^1) = 1.
        let s = dense_walsh(&[false, true]);
        assert_eq!(s[0], Dyadic::ZERO);
        assert_eq!(s[1], Dyadic::ONE);
        // AND of two variables.
        let s = dense_walsh(&[false, false, false, true]);
        assert_eq!(s[0], Dyadic::new(1, -1));
        assert_eq!(s[0b11], Dyadic::new(-1, -1));
    }

    #[test]
    fn cache_is_reused_across_functions() {
        let mut b = BddManager::new(3);
        let x = b.var(VarId(0));
        let y = b.var(VarId(1));
        let f = b.and(x, y);
        let g = b.or(f, x);
        let mut cache = SparseWalshCache::new();
        let _ = walsh_sparse(&b, f, &mut cache);
        let filled = cache.len();
        assert!(filled > 0);
        let _ = walsh_sparse(&b, g, &mut cache);
        assert!(cache.len() >= filled);
    }
}
