//! Algebraic decision diagrams (ADDs) with generic terminal values.
//!
//! An ADD represents a function `{0,1}ⁿ → S` for an arbitrary value set `S`
//! (Bahar et al., *Algebraic Decision Diagrams and Their Applications*). When
//! `S = {0, 1}` an ADD degenerates to a BDD. [`AddManager`] is hash-consed in
//! the same style as [`crate::bdd::BddManager`]: structural
//! equality of functions is handle equality, and binary operations are
//! memoized.
//!
//! The hot structures follow CUDD (see DESIGN.md §12): hash consing goes
//! through open-addressed unique tables, and memoization through fixed-size
//! direct-mapped lossy caches. A manager owns those structures outright on
//! the [`crate::backend::Private`] backend ([`crate::table`]), or borrows a
//! run-wide concurrent store on [`crate::backend::Shared`]
//! ([`crate::shared`], DESIGN.md §14) — the manager API is identical either
//! way, and handles are canonical within a store under both. The [`Dyadic`]
//! arithmetic used by the probing-security engines is additionally
//! monomorphized with algebraic short-circuits (`0 + f = f`, `0 · f = 0`,
//! `1 · f = f`, `f − f = 0`) checked before any cache probe.
//!
//! ```
//! use walshcheck_dd::add::AddManager;
//! use walshcheck_dd::dyadic::Dyadic;
//! use walshcheck_dd::var::VarId;
//!
//! let mut m = AddManager::new(2);
//! let x = m.indicator(VarId(0), Dyadic::ONE, Dyadic::ZERO);
//! let y = m.indicator(VarId(1), Dyadic::from_int(2), Dyadic::ZERO);
//! let s = m.add_op(x, y);
//! assert_eq!(*m.eval(s, 0b11), Dyadic::from_int(3));
//! assert_eq!(*m.eval(s, 0b00), Dyadic::ZERO);
//! ```

use std::cell::Cell;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

use crate::bdd::{Bdd, BddManager};
use crate::budget::NodeBudget;
use crate::dyadic::Dyadic;
use crate::fasthash::{hash_pair, FastMap, FastSet};
use crate::shared::{MkMemo, SharedAddStore};
use crate::table::{BinaryApplyCache, Subtable, UnaryApplyCache};
use crate::var::{VarId, VarSet};

/// Handle to an ADD node inside an [`AddManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Add(u32);

const TERM_BIT: u32 = 1 << 31;

/// First apply-cache op tag reserved for the partial-WHT L2 memo
/// (`WHT_OP_BASE + level`). User-visible [`AddManager::apply2`] tokens are
/// `u8`, so tags at 256 and above can never collide with an operator.
const WHT_OP_BASE: u32 = 1 << 8;
const TERMINAL_VAR: u32 = u32::MAX;

impl Add {
    /// Whether this handle denotes a terminal (constant) node.
    pub fn is_terminal(self) -> bool {
        self.0 & TERM_BIT != 0
    }

    fn term_index(self) -> usize {
        (self.0 & !TERM_BIT) as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Add,
    hi: Add,
}

/// Counters of the memoization caches behind [`AddManager::apply2`] /
/// [`AddManager::apply1`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyCacheStats {
    /// Lookups answered from a cache.
    pub hits: u64,
    /// Results computed and inserted.
    pub misses: u64,
    /// Cache generations retired via [`AddManager::clear_caches`] or a
    /// resizing [`AddManager::set_apply_cache_limit`]. The direct-mapped
    /// caches never flush wholesale on their own — a colliding insert
    /// overwrites one slot instead. On the shared backend this counts the
    /// manager's private L1 flushes; the run-wide caches are never flushed.
    pub flushes: u64,
}

/// Default per-cache slot budget (see
/// [`AddManager::set_apply_cache_limit`]). The engines override this from
/// their byte budget; the default keeps a standalone manager around 1 MiB.
const DEFAULT_APPLY_CACHE_LIMIT: usize = 1 << 16;

/// Small-terminal intern table size. The first few distinct terminals a
/// manager sees are the workload's ubiquitous constants (0, ±1, ±½, …);
/// serving them from a linear scan skips the hash (and, on the shared
/// backend, the lock) path of the terminal table.
const SMALL_TERMS: usize = 8;

/// The node/terminal store a manager works against: owned outright
/// ([`crate::backend::Private`]) or a handle on the run-wide concurrent
/// store ([`crate::backend::Shared`]) plus this manager's private `mk`
/// memo, which keeps repeat interning off the shared unique table.
#[derive(Debug)]
enum AddStore<T> {
    Private(PrivateAddStore<T>),
    Shared {
        store: Arc<SharedAddStore<T>>,
        memo: MkMemo,
        /// Private L1 apply caches in front of the run-wide (L2) caches.
        /// Every result this manager computes is recorded in both, so the
        /// manager's own repeat lookups hit at private-backend cost — the
        /// L1 sees the exact put sequence a private manager's cache would —
        /// while L1 misses fall through to the shared L2, which is what
        /// carries cross-manager reuse.
        binary_l1: BinaryApplyCache,
        unary_l1: UnaryApplyCache,
        /// Private memo of the run-wide terminal table: terminal ids are
        /// canonical per store and never move, so a hit skips the terminal
        /// mutex entirely.
        term_memo: FastMap<T, Add>,
        /// Read-through copy of the shared arena's nodes, indexed by id.
        /// Arena slots are written exactly once, so a mirrored `(var, lo,
        /// hi)` can never go stale — reads the manager repeats become plain
        /// vector loads instead of segment-located atomics. Slots holding
        /// `lo ==` [`MIRROR_VACANT`] fall back to the arena and fill in.
        mirror: Vec<Cell<(u32, u32, u32)>>,
    },
}

/// `lo` sentinel of an unfilled mirror slot: real `lo` edges are node ids
/// or `TERM_BIT`-tagged terminal indices, never `u32::MAX` (which would
/// need 2³¹ distinct terminals).
const MIRROR_VACANT: u32 = u32::MAX;

/// The single-owner store: the PR 5 kernel structures, unchanged.
#[derive(Debug)]
struct PrivateAddStore<T> {
    nodes: Vec<Node>,
    /// One unique subtable per variable; the variable index selects the
    /// subtable, the `(lo, hi)` pair is the key (see [`crate::table`]).
    unique: Vec<Subtable>,
    terminals: Vec<T>,
    term_unique: FastMap<T, Add>,
    binary_cache: BinaryApplyCache,
    unary_cache: UnaryApplyCache,
}

/// An arena-based hash-consed ADD manager over terminal values of type `T`.
///
/// Terminal values are interned, so `T` must have a canonical representation
/// (`Eq`/`Hash` must agree with semantic equality).
#[derive(Debug)]
pub struct AddManager<T> {
    store: AddStore<T>,
    /// The first [`SMALL_TERMS`] interned terminals, scanned linearly
    /// before the terminal table.
    term_small: Vec<(T, Add)>,
    apply_stats: ApplyCacheStats,
    /// `apply_stats.misses` at the last flush, to count a flush only when
    /// the caches could hold something.
    misses_at_flush: u64,
    budget: NodeBudget,
    /// Internal nodes *this manager* interned first (on the private backend,
    /// exactly the arena size). The node budget charges against this
    /// counter, so on the shared backend each worker accounts its own
    /// creations instead of the racy store-wide total.
    created: usize,
    num_vars: u32,
}

impl<T: Clone + Eq + Hash + Debug> AddManager<T> {
    /// Creates a manager with `num_vars` variables (levels `0..num_vars`)
    /// owning a private store.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds [`VarId::MAX_VARS`].
    pub fn new(num_vars: u32) -> Self {
        assert!(num_vars <= VarId::MAX_VARS, "too many variables");
        AddManager {
            store: AddStore::Private(PrivateAddStore {
                nodes: Vec::new(),
                unique: (0..num_vars).map(|_| Subtable::default()).collect(),
                terminals: Vec::new(),
                term_unique: FastMap::default(),
                binary_cache: BinaryApplyCache::new(DEFAULT_APPLY_CACHE_LIMIT),
                unary_cache: UnaryApplyCache::new(DEFAULT_APPLY_CACHE_LIMIT >> 4),
            }),
            term_small: Vec::new(),
            apply_stats: ApplyCacheStats::default(),
            misses_at_flush: 0,
            budget: NodeBudget::default(),
            created: 0,
            num_vars,
        }
    }

    /// Creates a manager working against the given run-wide store; reached
    /// via [`crate::backend::Shared`].
    pub(crate) fn with_shared(num_vars: u32, store: Arc<SharedAddStore<T>>) -> Self {
        assert!(num_vars <= VarId::MAX_VARS, "too many variables");
        store.attach();
        AddManager {
            store: AddStore::Shared {
                store,
                memo: MkMemo::new(),
                binary_l1: BinaryApplyCache::new(DEFAULT_APPLY_CACHE_LIMIT),
                unary_l1: UnaryApplyCache::new(DEFAULT_APPLY_CACHE_LIMIT >> 4),
                term_memo: FastMap::default(),
                mirror: Vec::new(),
            },
            term_small: Vec::new(),
            apply_stats: ApplyCacheStats::default(),
            misses_at_flush: 0,
            budget: NodeBudget::default(),
            created: 0,
            num_vars,
        }
    }

    /// Whether this manager works against a run-wide shared store.
    pub fn is_shared(&self) -> bool {
        matches!(self.store, AddStore::Shared { .. })
    }

    /// Installs (or clears, with `None`) a node-growth budget and rebases
    /// its baseline to the nodes this manager has created so far. Once set,
    /// interning more than `limit` new internal nodes past the most recent
    /// [`AddManager::rebase_node_budget`] raises a
    /// [`crate::budget::CapacityExceeded`] panic payload for the caller to
    /// `catch_unwind`. Prefer installing budgets via
    /// [`crate::backend::DdConfig`] at manager creation.
    pub fn set_node_budget(&mut self, limit: Option<usize>) {
        self.budget.set(limit, self.created);
    }

    /// Moves the budget baseline forward, making existing structure free.
    /// Call at each unit-of-work (tuple) boundary.
    pub fn rebase_node_budget(&mut self) {
        self.budget.rebase(self.created);
    }

    /// Sizes the apply caches to about `limit` slots (rounded down to a
    /// power of two, floored at 16). The caches are fixed direct-mapped
    /// slabs: they allocate their full footprint up front and colliding
    /// entries overwrite each other, so this bounds memory exactly.
    /// Memoization only affects time, never results, so any limit is safe.
    /// Resizing to a different slot count drops all cached entries.
    ///
    /// On the shared backend this sizes the manager's private L1 caches;
    /// the run-wide L2 caches are sized once, at
    /// [`crate::backend::Shared::new`] time.
    pub fn set_apply_cache_limit(&mut self, limit: usize) {
        match &mut self.store {
            AddStore::Private(p) => {
                p.binary_cache.resize(limit);
                p.unary_cache.resize((limit >> 4).max(16));
            }
            AddStore::Shared {
                binary_l1,
                unary_l1,
                ..
            } => {
                binary_l1.resize(limit);
                unary_l1.resize((limit >> 4).max(16));
            }
        }
    }

    /// The apply-cache counters accumulated so far (they survive flushes).
    /// On the shared backend they count *this manager's* probes — hits
    /// include entries other workers computed.
    pub fn apply_cache_stats(&self) -> ApplyCacheStats {
        self.apply_stats
    }

    /// Heap footprint of both apply-cache slabs, in bytes. Fixed by
    /// [`AddManager::set_apply_cache_limit`] (or, shared, at backend
    /// creation) — it does not vary with occupancy, because the slabs are
    /// allocated in full up front.
    pub fn apply_cache_bytes(&self) -> usize {
        match &self.store {
            AddStore::Private(p) => p.binary_cache.bytes() + p.unary_cache.bytes(),
            AddStore::Shared {
                store,
                binary_l1,
                unary_l1,
                ..
            } => binary_l1.bytes() + unary_l1.bytes() + store.binary.bytes() + store.unary.bytes(),
        }
    }

    /// Heap footprint of the unique table's slot arrays, in bytes.
    pub fn unique_table_bytes(&self) -> usize {
        match &self.store {
            AddStore::Private(p) => p.unique.iter().map(Subtable::heap_bytes).sum(),
            AddStore::Shared { store, .. } => store.nodes.heap_bytes(),
        }
    }

    /// Number of variables managed.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The internal node behind `f` (which must not be terminal).
    #[inline]
    fn inode(&self, f: Add) -> Node {
        match &self.store {
            AddStore::Private(p) => p.nodes[f.0 as usize],
            AddStore::Shared { store, mirror, .. } => {
                if let Some(slot) = mirror.get(f.0 as usize) {
                    let (var, lo, hi) = slot.get();
                    if lo != MIRROR_VACANT {
                        return Node {
                            var,
                            lo: Add(lo),
                            hi: Add(hi),
                        };
                    }
                }
                let n = store.nodes.node(f.0);
                if let Some(slot) = mirror.get(f.0 as usize) {
                    slot.set((n.var, n.lo, n.hi));
                }
                Node {
                    var: n.var,
                    lo: Add(n.lo),
                    hi: Add(n.hi),
                }
            }
        }
    }

    /// The terminal value at table index `idx`.
    #[inline]
    fn term_ref(&self, idx: usize) -> &T {
        match &self.store {
            AddStore::Private(p) => &p.terminals[idx],
            AddStore::Shared { store, .. } => store.terms.get(idx as u32),
        }
    }

    #[inline]
    fn bin_get(&self, op: u32, f: u32, g: u32) -> Option<u32> {
        match &self.store {
            AddStore::Private(p) => p.binary_cache.get(op, f, g),
            AddStore::Shared {
                store, binary_l1, ..
            } => binary_l1.get(op, f, g).or_else(|| {
                store
                    .publish()
                    .then(|| store.binary.get(op, f, g))
                    .flatten()
            }),
        }
    }

    #[inline]
    fn bin_put(&mut self, op: u32, f: u32, g: u32, r: u32) {
        match &mut self.store {
            AddStore::Private(p) => p.binary_cache.put(op, f, g, r),
            AddStore::Shared {
                store, binary_l1, ..
            } => {
                binary_l1.put(op, f, g, r);
                if store.publish() {
                    store.binary.put(op, f, g, r);
                }
            }
        }
    }

    /// Probes the apply-cache-backed L2 memo for the normalized partial
    /// WHT of `f` from `level` down (see `spectral::wht_with`). The entry
    /// lives in the ordinary binary apply cache — shared run-wide on the
    /// shared backend, so a transform one worker computed is visible to
    /// all — under op tags above the `u8` token space, which keeps it
    /// disjoint from every [`AddManager::apply2`] operator.
    pub fn wht_l2_get(&self, level: u32, f: Add) -> Option<Add> {
        self.bin_get(WHT_OP_BASE + level, f.0, 0).map(Add)
    }

    /// Records a normalized partial-WHT result in the L2 memo; see
    /// [`AddManager::wht_l2_get`].
    pub fn wht_l2_put(&mut self, level: u32, f: Add, r: Add) {
        self.bin_put(WHT_OP_BASE + level, f.0, 0, r.0);
    }

    #[inline]
    fn un_get(&self, op: u32, f: u32) -> Option<u32> {
        match &self.store {
            AddStore::Private(p) => p.unary_cache.get(op, f),
            AddStore::Shared {
                store, unary_l1, ..
            } => unary_l1
                .get(op, f)
                .or_else(|| store.publish().then(|| store.unary.get(op, f)).flatten()),
        }
    }

    #[inline]
    fn un_put(&mut self, op: u32, f: u32, r: u32) {
        match &mut self.store {
            AddStore::Private(p) => p.unary_cache.put(op, f, r),
            AddStore::Shared {
                store, unary_l1, ..
            } => {
                unary_l1.put(op, f, r);
                if store.publish() {
                    store.unary.put(op, f, r);
                }
            }
        }
    }

    /// Interns and returns the constant function `value`.
    pub fn constant(&mut self, value: T) -> Add {
        for (v, id) in &self.term_small {
            if *v == value {
                return *id;
            }
        }
        let id = match &mut self.store {
            AddStore::Private(p) => {
                if let Some(&id) = p.term_unique.get(&value) {
                    id
                } else {
                    let idx = u32::try_from(p.terminals.len()).expect("terminal table full");
                    assert!(idx & TERM_BIT == 0, "terminal table full");
                    let id = Add(TERM_BIT | idx);
                    p.terminals.push(value.clone());
                    p.term_unique.insert(value.clone(), id);
                    id
                }
            }
            AddStore::Shared {
                store, term_memo, ..
            } => {
                if let Some(&id) = term_memo.get(&value) {
                    id
                } else {
                    let idx = store.terms.intern(&value);
                    assert!(idx & TERM_BIT == 0, "terminal table full");
                    let id = Add(TERM_BIT | idx);
                    term_memo.insert(value.clone(), id);
                    id
                }
            }
        };
        if self.term_small.len() < SMALL_TERMS {
            self.term_small.push((value, id));
        }
        id
    }

    /// The terminal value of a constant node, or `None` for internal nodes.
    pub fn terminal_value(&self, f: Add) -> Option<&T> {
        f.is_terminal().then(|| self.term_ref(f.term_index()))
    }

    /// Decomposes an internal node into `(var, lo, hi)`, or `None` for
    /// terminals.
    pub fn node_parts(&self, f: Add) -> Option<(VarId, Add, Add)> {
        if f.is_terminal() {
            None
        } else {
            let n = self.inode(f);
            Some((VarId(n.var), n.lo, n.hi))
        }
    }

    fn var_of(&self, f: Add) -> u32 {
        if f.is_terminal() {
            TERMINAL_VAR
        } else {
            self.inode(f).var
        }
    }

    /// Interns the internal node `(var, lo, hi)` with the reduction rule.
    pub fn mk(&mut self, var: VarId, lo: Add, hi: Add) -> Add {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var.0 < self.var_of(lo) && var.0 < self.var_of(hi),
            "ordering violated"
        );
        match &mut self.store {
            AddStore::Private(p) => {
                let h = hash_pair(lo.0, hi.0);
                let nodes = &p.nodes;
                let sub = &mut p.unique[var.0 as usize];
                if let Some(found) = sub.get(h, |i| {
                    let n = &nodes[i as usize];
                    n.lo == lo && n.hi == hi
                }) {
                    return Add(found);
                }
                self.budget.charge("add-arena", self.created);
                let raw = u32::try_from(p.nodes.len()).expect("ADD arena full");
                assert!(raw & TERM_BIT == 0, "ADD arena full");
                p.nodes.push(Node { var: var.0, lo, hi });
                let nodes = &p.nodes;
                p.unique[var.0 as usize].insert(h, raw, |i| {
                    let n = &nodes[i as usize];
                    hash_pair(n.lo.0, n.hi.0)
                });
                self.created += 1;
                Add(raw)
            }
            AddStore::Shared {
                store,
                memo,
                mirror,
                ..
            } => {
                if let Some(id) = memo.get(var.0, lo.0, hi.0) {
                    return Add(id);
                }
                // The budget verdict is precomputed so a CapacityExceeded
                // unwind can never poison the shared table — `intern` does
                // probe and insert under one stripe acquisition and returns
                // `None` instead of inserting when over budget.
                let over = self.budget.would_trip(self.created);
                let Some((id, fresh)) = store.nodes.intern(var.0, lo.0, hi.0, over) else {
                    self.budget.charge("add-arena", self.created);
                    unreachable!("would_trip and charge disagree");
                };
                assert!(id & TERM_BIT == 0, "ADD arena full");
                if fresh {
                    self.created += 1;
                }
                // `mk` is the one `&mut self` choke point every new id
                // passes through, so the mirror is grown here; `inode`
                // (which only has `&self`) fills out-of-range ids lazily.
                let idx = id as usize;
                if mirror.len() <= idx {
                    mirror.resize(idx + 1, Cell::new((0, MIRROR_VACANT, 0)));
                }
                mirror[idx].set((var.0, lo.0, hi.0));
                memo.put(var.0, lo.0, hi.0, id);
                Add(id)
            }
        }
    }

    /// The function that is `hi_value` when `v` is 1 and `lo_value` otherwise.
    pub fn indicator(&mut self, v: VarId, hi_value: T, lo_value: T) -> Add {
        assert!(v.0 < self.num_vars, "unknown variable {v}");
        let h = self.constant(hi_value);
        let l = self.constant(lo_value);
        self.mk(v, l, h)
    }

    /// Evaluates `f` under `assignment` (bit `i` = variable `i`).
    pub fn eval(&self, f: Add, assignment: u128) -> &T {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.inode(cur);
            cur = if assignment >> n.var & 1 == 1 {
                n.hi
            } else {
                n.lo
            };
        }
        self.term_ref(cur.term_index())
    }

    /// Top variable and cofactor pairs of `(f, g)` for the apply recursion.
    #[inline]
    fn cofactors2(&self, f: Add, g: Add) -> (u32, Add, Add, Add, Add) {
        let vf = self.var_of(f);
        let vg = self.var_of(g);
        let top = vf.min(vg);
        let (f0, f1) = if vf == top {
            let n = self.inode(f);
            (n.lo, n.hi)
        } else {
            (f, f)
        };
        let (g0, g1) = if vg == top {
            let n = self.inode(g);
            (n.lo, n.hi)
        } else {
            (g, g)
        };
        (top, f0, f1, g0, g1)
    }

    /// Applies a binary pointwise operation. `token` identifies the operation
    /// in the memoization cache and must be distinct for semantically
    /// distinct closures; tokens 1–3 and 16–17 are reserved for the built-in
    /// [`Dyadic`] operations.
    pub fn apply2(&mut self, token: u8, f: Add, g: Add, op: &impl Fn(&T, &T) -> T) -> Add {
        if let (Some(a), Some(b)) = (self.terminal_value(f), self.terminal_value(g)) {
            let v = op(a, b);
            return self.constant(v);
        }
        if let Some(r) = self.bin_get(token as u32, f.0, g.0) {
            self.apply_stats.hits += 1;
            return Add(r);
        }
        let (top, f0, f1, g0, g1) = self.cofactors2(f, g);
        let r0 = self.apply2(token, f0, g0, op);
        let r1 = self.apply2(token, f1, g1, op);
        let r = self.mk(VarId(top), r0, r1);
        self.apply_stats.misses += 1;
        self.bin_put(token as u32, f.0, g.0, r.0);
        r
    }

    /// Applies a unary pointwise operation with memoization token `token`
    /// (tokens 16–17 are reserved for the built-in [`Dyadic`] operations).
    pub fn apply1(&mut self, token: u8, f: Add, op: &impl Fn(&T) -> T) -> Add {
        if let Some(a) = self.terminal_value(f) {
            let v = op(a);
            return self.constant(v);
        }
        if let Some(r) = self.un_get(token as u32, f.0) {
            self.apply_stats.hits += 1;
            return Add(r);
        }
        let n = self.inode(f);
        let r0 = self.apply1(token, n.lo, op);
        let r1 = self.apply1(token, n.hi, op);
        let r = self.mk(VarId(n.var), r0, r1);
        self.apply_stats.misses += 1;
        self.un_put(token as u32, f.0, r.0);
        r
    }

    /// Structurally copies a BDD into this manager, mapping the `true`
    /// terminal to `then_value` and `false` to `else_value`.
    #[allow(clippy::wrong_self_convention)] // conversion *into* this manager
    pub fn from_bdd(&mut self, bdds: &BddManager, f: Bdd, then_value: T, else_value: T) -> Add {
        let mut memo: FastMap<Bdd, Add> = FastMap::default();
        let t = self.constant(then_value);
        let e = self.constant(else_value);
        self.from_bdd_rec(bdds, f, t, e, &mut memo)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_bdd_rec(
        &mut self,
        bdds: &BddManager,
        f: Bdd,
        t: Add,
        e: Add,
        memo: &mut FastMap<Bdd, Add>,
    ) -> Add {
        if f == Bdd::TRUE {
            return t;
        }
        if f == Bdd::FALSE {
            return e;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (var, lo, hi) = bdds.node(f).expect("non-terminal");
        let rlo = self.from_bdd_rec(bdds, lo, t, e, memo);
        let rhi = self.from_bdd_rec(bdds, hi, t, e, memo);
        let r = self.mk(var, rlo, rhi);
        memo.insert(f, r);
        r
    }

    /// Builds the BDD of `{x : pred(f(x))}` in `bdds`.
    pub fn to_bdd(&self, bdds: &mut BddManager, f: Add, pred: &impl Fn(&T) -> bool) -> Bdd {
        let mut memo: FastMap<Add, Bdd> = FastMap::default();
        self.to_bdd_rec(bdds, f, pred, &mut memo)
    }

    fn to_bdd_rec(
        &self,
        bdds: &mut BddManager,
        f: Add,
        pred: &impl Fn(&T) -> bool,
        memo: &mut FastMap<Add, Bdd>,
    ) -> Bdd {
        if let Some(v) = self.terminal_value(f) {
            return bdds.constant(pred(v));
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.inode(f);
        let rlo = self.to_bdd_rec(bdds, n.lo, pred, memo);
        let rhi = self.to_bdd_rec(bdds, n.hi, pred, memo);
        let v = bdds.var(VarId(n.var));
        let r = bdds.ite(v, rhi, rlo);
        memo.insert(f, r);
        r
    }

    /// The set of variables `f` structurally depends on.
    pub fn support(&self, f: Add) -> VarSet {
        let mut seen: FastSet<Add> = FastSet::default();
        let mut stack = vec![f];
        let mut s = VarSet::EMPTY;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = self.inode(n);
            s.insert(VarId(node.var));
            stack.push(node.lo);
            stack.push(node.hi);
        }
        s
    }

    /// Number of distinct nodes reachable from `f` (including terminals).
    pub fn node_count(&self, f: Add) -> usize {
        let mut seen: FastSet<Add> = FastSet::default();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if seen.insert(n) && !n.is_terminal() {
                let node = self.inode(n);
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        seen.len()
    }

    /// A chain ADD that is `value` exactly on the full assignment of `vars`
    /// described by `polarity`, and `default` elsewhere.
    pub fn cube_terminal(&mut self, vars: VarSet, polarity: u128, value: T, default: T) -> Add {
        let mut acc = self.constant(value);
        let def = self.constant(default);
        let members: Vec<VarId> = vars.iter().collect();
        for v in members.into_iter().rev() {
            acc = if polarity >> v.0 & 1 == 1 {
                self.mk(v, def, acc)
            } else {
                self.mk(v, acc, def)
            };
        }
        acc
    }

    /// Builds the ADD of a sparse function in one radix pass: `entries`
    /// maps full assignments (bit `i` = variable `i`) to values, everything
    /// else is `default`. Duplicate keys must not occur.
    ///
    /// This is the fast path for converting a convolution hash map into an
    /// ADD (linear in `entries.len() × num_vars`, no apply-cache traffic).
    #[allow(clippy::wrong_self_convention)] // conversion *into* this manager
    pub fn from_sparse(&mut self, entries: Vec<(u128, T)>, default: T) -> Add {
        let n = self.num_vars;
        let def = self.constant(default);
        self.from_sparse_rec(0, n, entries, def)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_sparse_rec(&mut self, level: u32, n: u32, entries: Vec<(u128, T)>, def: Add) -> Add {
        if entries.is_empty() {
            return def;
        }
        if level == n {
            debug_assert_eq!(entries.len(), 1, "duplicate sparse keys");
            let (_, v) = entries.into_iter().next().expect("non-empty");
            return self.constant(v);
        }
        let bit = 1u128 << level;
        let (hi, lo): (Vec<_>, Vec<_>) = entries.into_iter().partition(|(k, _)| k & bit != 0);
        let l = self.from_sparse_rec(level + 1, n, lo, def);
        let h = self.from_sparse_rec(level + 1, n, hi, def);
        self.mk(VarId(level), l, h)
    }

    /// Invokes `callback(assignment, value)` for every full assignment whose
    /// terminal value differs from `zero`, expanding skipped variables.
    ///
    /// Intended for extraction of sparse functions: subtrees that reduce to
    /// `zero` are pruned without expansion, so the cost is proportional to
    /// the number of reported entries times the depth.
    pub fn for_each_nonzero(&self, f: Add, zero: &T, callback: &mut impl FnMut(u128, &T)) {
        self.walk(f, 0, 0u128, zero, callback);
    }

    fn walk(
        &self,
        f: Add,
        level: u32,
        partial: u128,
        zero: &T,
        callback: &mut impl FnMut(u128, &T),
    ) {
        if let Some(v) = self.terminal_value(f) {
            if v == zero {
                return;
            }
            if level == self.num_vars {
                callback(partial, v);
            } else {
                // Expand remaining skipped variables.
                self.walk(f, level + 1, partial, zero, callback);
                self.walk(f, level + 1, partial | 1u128 << level, zero, callback);
            }
            return;
        }
        let n = self.inode(f);
        if n.var > level {
            self.walk(f, level + 1, partial, zero, callback);
            self.walk(f, level + 1, partial | 1u128 << level, zero, callback);
        } else {
            self.walk(n.lo, level + 1, partial, zero, callback);
            self.walk(n.hi, level + 1, partial | 1u128 << level, zero, callback);
        }
    }

    /// Clears the operation caches; handles remain valid.
    ///
    /// On the shared backend only the manager's private L1 caches are
    /// cleared — the run-wide L2 caches stay, since other managers may be
    /// mid-operation on them and keeping entries is always safe (cached
    /// results are canonical handles).
    pub fn clear_caches(&mut self) {
        if self.apply_stats.misses > self.misses_at_flush {
            self.apply_stats.flushes += 1;
            self.misses_at_flush = self.apply_stats.misses;
        }
        match &mut self.store {
            AddStore::Private(p) => {
                p.binary_cache.clear();
                p.unary_cache.clear();
            }
            AddStore::Shared {
                binary_l1,
                unary_l1,
                ..
            } => {
                binary_l1.clear();
                unary_l1.clear();
            }
        }
    }

    /// Total number of live internal nodes in the arena. On the shared
    /// backend this is the *store-wide* count, racy while other workers
    /// intern.
    pub fn arena_size(&self) -> usize {
        match &self.store {
            AddStore::Private(p) => p.nodes.len(),
            AddStore::Shared { store, .. } => store.nodes.len(),
        }
    }
}

/// Cache tokens for the built-in [`Dyadic`] operations.
mod token {
    pub const ADD: u32 = 1;
    pub const SUB: u32 = 2;
    pub const MUL: u32 = 3;
    pub const NEG: u32 = 16;
    pub const HALF: u32 = 17;
}

impl AddManager<Dyadic> {
    /// The constant-zero function.
    pub fn zero(&mut self) -> Add {
        self.constant(Dyadic::ZERO)
    }

    /// Whether `f` is the terminal 0 (cheap handle-level check).
    #[inline]
    fn is_zero_term(&self, f: Add) -> bool {
        f.is_terminal() && self.term_ref(f.term_index()).is_zero()
    }

    /// Whether `f` is the terminal 1.
    #[inline]
    fn is_one_term(&self, f: Add) -> bool {
        f.is_terminal() && *self.term_ref(f.term_index()) == Dyadic::ONE
    }

    /// Pointwise sum `f + g`.
    pub fn add_op(&mut self, f: Add, g: Add) -> Add {
        // 0 + f = f, checked before any cache traffic. This fires at every
        // level of the recursion, not just at the root: sparse Walsh
        // matrices are mostly zero cofactors.
        if self.is_zero_term(f) {
            return g;
        }
        if self.is_zero_term(g) {
            return f;
        }
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let (Some(x), Some(y)) = (self.terminal_value(a), self.terminal_value(b)) {
            let v = *x + *y;
            return self.constant(v);
        }
        if let Some(r) = self.bin_get(token::ADD, a.0, b.0) {
            self.apply_stats.hits += 1;
            return Add(r);
        }
        let (top, f0, f1, g0, g1) = self.cofactors2(a, b);
        let r0 = self.add_op(f0, g0);
        let r1 = self.add_op(f1, g1);
        let r = self.mk(VarId(top), r0, r1);
        self.apply_stats.misses += 1;
        self.bin_put(token::ADD, a.0, b.0, r.0);
        r
    }

    /// Pointwise difference `f − g`.
    pub fn sub_op(&mut self, f: Add, g: Add) -> Add {
        // Hash consing makes f − f = 0 a handle comparison.
        if f == g {
            return self.zero();
        }
        if self.is_zero_term(g) {
            return f;
        }
        if self.is_zero_term(f) {
            return self.neg_op(g);
        }
        if let (Some(x), Some(y)) = (self.terminal_value(f), self.terminal_value(g)) {
            let v = *x - *y;
            return self.constant(v);
        }
        if let Some(r) = self.bin_get(token::SUB, f.0, g.0) {
            self.apply_stats.hits += 1;
            return Add(r);
        }
        let (top, f0, f1, g0, g1) = self.cofactors2(f, g);
        let r0 = self.sub_op(f0, g0);
        let r1 = self.sub_op(f1, g1);
        let r = self.mk(VarId(top), r0, r1);
        self.apply_stats.misses += 1;
        self.bin_put(token::SUB, f.0, g.0, r.0);
        r
    }

    /// Pointwise product `f · g`.
    pub fn mul_op(&mut self, f: Add, g: Add) -> Add {
        // 0 · f = 0 and 1 · f = f absorb whole subproblems; sign-ADDs make
        // the ±1 cases ubiquitous.
        if self.is_zero_term(f) {
            return f;
        }
        if self.is_zero_term(g) {
            return g;
        }
        if self.is_one_term(f) {
            return g;
        }
        if self.is_one_term(g) {
            return f;
        }
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let (Some(x), Some(y)) = (self.terminal_value(a), self.terminal_value(b)) {
            let v = *x * *y;
            return self.constant(v);
        }
        if let Some(r) = self.bin_get(token::MUL, a.0, b.0) {
            self.apply_stats.hits += 1;
            return Add(r);
        }
        let (top, f0, f1, g0, g1) = self.cofactors2(a, b);
        let r0 = self.mul_op(f0, g0);
        let r1 = self.mul_op(f1, g1);
        let r = self.mk(VarId(top), r0, r1);
        self.apply_stats.misses += 1;
        self.bin_put(token::MUL, a.0, b.0, r.0);
        r
    }

    /// Pointwise negation `−f`.
    pub fn neg_op(&mut self, f: Add) -> Add {
        if self.is_zero_term(f) {
            return f;
        }
        if let Some(x) = self.terminal_value(f) {
            let v = -*x;
            return self.constant(v);
        }
        if let Some(r) = self.un_get(token::NEG, f.0) {
            self.apply_stats.hits += 1;
            return Add(r);
        }
        let n = self.inode(f);
        let r0 = self.neg_op(n.lo);
        let r1 = self.neg_op(n.hi);
        let r = self.mk(VarId(n.var), r0, r1);
        self.apply_stats.misses += 1;
        self.un_put(token::NEG, f.0, r.0);
        r
    }

    /// Pointwise exact halving `f / 2`.
    pub fn half_op(&mut self, f: Add) -> Add {
        if self.is_zero_term(f) {
            return f;
        }
        if let Some(x) = self.terminal_value(f) {
            let v = x.half();
            return self.constant(v);
        }
        if let Some(r) = self.un_get(token::HALF, f.0) {
            self.apply_stats.hits += 1;
            return Add(r);
        }
        let n = self.inode(f);
        let r0 = self.half_op(n.lo);
        let r1 = self.half_op(n.hi);
        let r = self.mk(VarId(n.var), r0, r1);
        self.apply_stats.misses += 1;
        self.un_put(token::HALF, f.0, r.0);
        r
    }

    /// Whether `f` is the constant-zero function.
    pub fn is_zero(&self, f: Add) -> bool {
        self.terminal_value(f).is_some_and(Dyadic::is_zero)
    }

    /// BDD of the support `{x : f(x) ≠ 0}`.
    pub fn nonzero_bdd(&self, bdds: &mut BddManager, f: Add) -> Bdd {
        self.to_bdd(bdds, f, &|v| !v.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_interned() {
        let mut m: AddManager<Dyadic> = AddManager::new(2);
        let a = m.constant(Dyadic::from_int(7));
        let b = m.constant(Dyadic::from_int(7));
        assert_eq!(a, b);
        assert!(a.is_terminal());
        assert_eq!(m.terminal_value(a), Some(&Dyadic::from_int(7)));
        // Past the small-terminal fast path, interning still dedupes.
        for i in 0..20 {
            let x = m.constant(Dyadic::from_int(i));
            let y = m.constant(Dyadic::from_int(i));
            assert_eq!(x, y);
        }
    }

    #[test]
    fn arithmetic_matches_pointwise_semantics() {
        let mut m: AddManager<Dyadic> = AddManager::new(3);
        let x = m.indicator(VarId(0), Dyadic::from_int(2), Dyadic::ZERO);
        let y = m.indicator(VarId(1), Dyadic::from_int(3), Dyadic::ONE);
        let sum = m.add_op(x, y);
        let prod = m.mul_op(x, y);
        for a in 0..8u128 {
            let xv = if a & 1 == 1 { 2 } else { 0 };
            let yv = if a >> 1 & 1 == 1 { 3 } else { 1 };
            assert_eq!(m.eval(sum, a).to_int(), Some(xv + yv));
            assert_eq!(m.eval(prod, a).to_int(), Some(xv * yv));
        }
        let neg = m.neg_op(sum);
        assert_eq!(m.eval(neg, 0b11).to_int(), Some(-5));
    }

    #[test]
    fn algebraic_short_circuits_return_canonical_handles() {
        let mut m: AddManager<Dyadic> = AddManager::new(3);
        let zero = m.zero();
        let one = m.constant(Dyadic::ONE);
        let x = m.indicator(VarId(0), Dyadic::from_int(2), Dyadic::from_int(5));
        // The shortcut result must be the *same handle* the full recursion
        // would intern — not merely an equal function.
        assert_eq!(m.add_op(zero, x), x);
        assert_eq!(m.add_op(x, zero), x);
        assert_eq!(m.mul_op(zero, x), zero);
        assert_eq!(m.mul_op(x, zero), zero);
        assert_eq!(m.mul_op(one, x), x);
        assert_eq!(m.mul_op(x, one), x);
        assert_eq!(m.sub_op(x, x), zero);
        assert_eq!(m.sub_op(x, zero), x);
        let nx = m.neg_op(x);
        assert_eq!(m.sub_op(zero, x), nx);
        // None of the above may have gone through the apply caches.
        let nodes_before = m.arena_size();
        let _ = m.add_op(zero, x);
        assert_eq!(m.arena_size(), nodes_before);
    }

    #[test]
    fn reduction_collapses_equal_children() {
        let mut m: AddManager<Dyadic> = AddManager::new(2);
        let c = m.constant(Dyadic::ONE);
        let same = m.mk(VarId(0), c, c);
        assert_eq!(same, c);
    }

    #[test]
    fn from_bdd_and_back() {
        let mut b = BddManager::new(2);
        let x = b.var(VarId(0));
        let y = b.var(VarId(1));
        let f = b.xor(x, y);
        let mut m: AddManager<Dyadic> = AddManager::new(2);
        // Sign encoding: true → −1, false → +1.
        let s = m.from_bdd(&b, f, Dyadic::MINUS_ONE, Dyadic::ONE);
        for a in 0..4u128 {
            let expect = if b.eval(f, a) { -1 } else { 1 };
            assert_eq!(m.eval(s, a).to_int(), Some(expect));
        }
        let back = m.to_bdd(&mut b, s, &|v| *v == Dyadic::MINUS_ONE);
        assert_eq!(back, f);
    }

    #[test]
    fn support_and_node_count() {
        let mut m: AddManager<Dyadic> = AddManager::new(4);
        let x = m.indicator(VarId(1), Dyadic::ONE, Dyadic::ZERO);
        let y = m.indicator(VarId(3), Dyadic::ONE, Dyadic::ZERO);
        let s = m.add_op(x, y);
        let sup = m.support(s);
        assert!(sup.contains(VarId(1)));
        assert!(sup.contains(VarId(3)));
        assert!(!sup.contains(VarId(0)));
        assert!(m.node_count(s) >= 4);
    }

    #[test]
    fn cube_terminal_hits_one_point() {
        let mut m: AddManager<Dyadic> = AddManager::new(3);
        let vars: VarSet = (0..3).map(VarId).collect();
        let c = m.cube_terminal(vars, 0b101, Dyadic::from_int(9), Dyadic::ZERO);
        for a in 0..8u128 {
            let expect = if a == 0b101 { 9 } else { 0 };
            assert_eq!(m.eval(c, a).to_int(), Some(expect));
        }
    }

    #[test]
    fn for_each_nonzero_enumerates_sparse_entries() {
        let mut m: AddManager<Dyadic> = AddManager::new(3);
        let vars: VarSet = (0..3).map(VarId).collect();
        let c1 = m.cube_terminal(vars, 0b010, Dyadic::ONE, Dyadic::ZERO);
        let c2 = m.cube_terminal(vars, 0b111, Dyadic::from_int(-2), Dyadic::ZERO);
        let f = m.add_op(c1, c2);
        let mut entries = Vec::new();
        m.for_each_nonzero(f, &Dyadic::ZERO, &mut |a, v| entries.push((a, *v)));
        entries.sort();
        assert_eq!(
            entries,
            vec![(0b010, Dyadic::ONE), (0b111, Dyadic::from_int(-2))]
        );
    }

    #[test]
    fn from_sparse_matches_cube_construction() {
        let mut m: AddManager<Dyadic> = AddManager::new(4);
        let entries = vec![
            (0b0000u128, Dyadic::ONE),
            (0b1010, Dyadic::from_int(-3)),
            (0b0111, Dyadic::new(1, -2)),
        ];
        let f = m.from_sparse(entries.clone(), Dyadic::ZERO);
        for a in 0..16u128 {
            let expect = entries
                .iter()
                .find(|&&(k, _)| k == a)
                .map(|&(_, v)| v)
                .unwrap_or(Dyadic::ZERO);
            assert_eq!(*m.eval(f, a), expect, "at {a:b}");
        }
        // Empty sparse set is the default constant.
        let z = m.from_sparse(Vec::new(), Dyadic::ONE);
        assert_eq!(m.terminal_value(z), Some(&Dyadic::ONE));
    }

    #[test]
    fn apply_cache_counts_and_flushes() {
        let mut m: AddManager<Dyadic> = AddManager::new(4);
        m.set_apply_cache_limit(0); // floored at 16 slots
        let slab = m.apply_cache_bytes();
        assert!(slab > 0, "slabs are allocated up front");
        let x = m.indicator(VarId(0), Dyadic::from_int(2), Dyadic::ZERO);
        let y = m.indicator(VarId(1), Dyadic::from_int(3), Dyadic::ONE);
        let s = m.add_op(x, y);
        let before = m.apply_cache_stats();
        assert!(before.misses > 0);
        // Same operation again: served from cache, result identical.
        let s2 = m.add_op(x, y);
        assert_eq!(s, s2);
        let after = m.apply_cache_stats();
        assert!(after.hits > before.hits);
        assert_eq!(after.misses, before.misses);
        // The slabs are fixed: byte footprint never varies with occupancy.
        assert_eq!(m.apply_cache_bytes(), slab);
        m.clear_caches();
        assert!(m.apply_cache_stats().flushes > 0);
        assert_eq!(m.apply_cache_bytes(), slab);
        // An idle clear doesn't inflate the flush counter.
        let flushes = m.apply_cache_stats().flushes;
        m.clear_caches();
        assert_eq!(m.apply_cache_stats().flushes, flushes);
        // Counters survive the flush, and resizing changes the footprint.
        assert!(m.apply_cache_stats().misses >= after.misses);
        m.set_apply_cache_limit(1 << 10);
        assert!(m.apply_cache_bytes() > slab);
    }

    #[test]
    fn lossy_collisions_still_produce_identical_handles() {
        // Tiny cache → constant evictions; results must not change.
        let mut small: AddManager<Dyadic> = AddManager::new(6);
        small.set_apply_cache_limit(0);
        let mut big: AddManager<Dyadic> = AddManager::new(6);
        let build = |m: &mut AddManager<Dyadic>| {
            let mut acc = m.zero();
            for v in 0..6u32 {
                let i = m.indicator(VarId(v), Dyadic::from_int(v as i64 + 1), Dyadic::ONE);
                acc = m.add_op(acc, i);
                acc = m.mul_op(acc, i);
                let h = m.half_op(acc);
                acc = m.sub_op(acc, h);
            }
            acc
        };
        let a = build(&mut small);
        let b = build(&mut big);
        for x in 0..64u128 {
            assert_eq!(small.eval(a, x), big.eval(b, x), "at {x:b}");
        }
    }

    #[test]
    fn is_zero_detects_cancellation() {
        let mut m: AddManager<Dyadic> = AddManager::new(2);
        let x = m.indicator(VarId(0), Dyadic::ONE, Dyadic::from_int(2));
        let nx = m.neg_op(x);
        let s = m.add_op(x, nx);
        assert!(m.is_zero(s));
        assert!(!m.is_zero(x));
    }

    #[test]
    fn shared_store_managers_agree_with_private_results() {
        use crate::backend::{DdBackend, DdConfig, Shared};
        let backend = Shared::new(None);
        let cfg = DdConfig::default();
        let mut sh = backend.add_manager(6, &cfg);
        assert!(sh.is_shared());
        let mut pv: AddManager<Dyadic> = AddManager::new(6);
        assert!(!pv.is_shared());
        let build = |m: &mut AddManager<Dyadic>| {
            let mut acc = m.zero();
            for v in 0..6u32 {
                let i = m.indicator(VarId(v), Dyadic::from_int(v as i64 + 1), Dyadic::ONE);
                acc = m.add_op(acc, i);
                acc = m.mul_op(acc, i);
                let h = m.half_op(acc);
                acc = m.sub_op(acc, h);
            }
            acc
        };
        let a = build(&mut sh);
        let b = build(&mut pv);
        for x in 0..64u128 {
            assert_eq!(sh.eval(a, x), pv.eval(b, x), "at {x:b}");
        }
        // A second shared manager re-finds the same handles without
        // creating nodes: everything dedupes against the store.
        let nodes = sh.arena_size();
        let mut sh2 = backend.add_manager(6, &cfg);
        let c = build(&mut sh2);
        assert_eq!(a, c, "shared handles must be canonical across managers");
        assert_eq!(sh2.arena_size(), nodes, "no duplicate nodes interned");
    }
}
