//! Node-growth budgets for the hash-consed arenas.
//!
//! The unique tables behind [`crate::bdd::BddManager`] and
//! [`crate::add::AddManager`] grow without bound: a pathological tuple can
//! blow the arena up until the OS kills the process, which turns one bad
//! combination into a lost run. A *node budget* bounds how many nodes a
//! manager may intern past a caller-chosen baseline. Exceeding the budget
//! raises a [`CapacityExceeded`] signal via [`std::panic::panic_any`], which
//! the verifier catches per combination (`catch_unwind`), quarantines the
//! offending tuple, and keeps sweeping.
//!
//! A panic payload — rather than threading `Result` through every recursive
//! apply/transform — keeps the hot paths allocation- and branch-cheap and
//! cannot be ignored by a caller. All crates in this workspace
//! `forbid(unsafe_code)`, so unwinding here is sound: the managers hold no
//! invariants that survive a tuple boundary (the engine rebuilds its context
//! after a quarantine).

/// Panic payload raised when an arena grows past its node budget.
///
/// Carried through [`std::panic::panic_any`]; recover it with
/// `payload.downcast_ref::<CapacityExceeded>()` inside a
/// [`std::panic::catch_unwind`] handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityExceeded {
    /// Which arena (or estimator) tripped, e.g. `"add-arena"`,
    /// `"bdd-arena"`, `"tuple-estimate"`.
    pub arena: &'static str,
    /// Nodes grown past the baseline when the budget tripped (or the
    /// estimated cost, for pre-charges).
    pub grown: usize,
    /// The configured budget.
    pub limit: usize,
}

impl std::fmt::Display for CapacityExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node budget exceeded in {}: grew {} nodes past baseline (limit {})",
            self.arena, self.grown, self.limit
        )
    }
}

/// Raises [`CapacityExceeded`] as a typed panic payload.
pub fn exceeded(arena: &'static str, grown: usize, limit: usize) -> ! {
    std::panic::panic_any(CapacityExceeded {
        arena,
        grown,
        limit,
    })
}

/// Shared budget bookkeeping embedded in each manager.
///
/// `base` is rebased to the current arena size at each tuple boundary so the
/// budget measures *growth attributable to the current combination*, not the
/// absolute arena size (shared structure built by earlier tuples stays free).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NodeBudget {
    limit: Option<usize>,
    base: usize,
}

impl NodeBudget {
    /// Installs (or clears, with `None`) the growth limit and rebases to
    /// `current`.
    pub(crate) fn set(&mut self, limit: Option<usize>, current: usize) {
        self.limit = limit;
        self.base = current;
    }

    /// Moves the baseline to `current` — call at each tuple boundary.
    pub(crate) fn rebase(&mut self, current: usize) {
        self.base = current;
    }

    /// Checks the budget before interning one more node into an arena of
    /// `current` nodes; diverges with [`CapacityExceeded`] if the new node
    /// would exceed the limit.
    #[inline]
    pub(crate) fn charge(&self, arena: &'static str, current: usize) {
        if let Some(limit) = self.limit {
            let grown = current.saturating_sub(self.base);
            if grown >= limit {
                exceeded(arena, grown + 1, limit);
            }
        }
    }

    /// Whether [`NodeBudget::charge`] would diverge at `current` — the
    /// non-panicking form, for callers that must decide *before* taking a
    /// lock (raising [`CapacityExceeded`] under a shared-table stripe mutex
    /// would poison it for every other worker).
    #[inline]
    pub(crate) fn would_trip(&self, current: usize) -> bool {
        self.limit
            .is_some_and(|limit| current.saturating_sub(self.base) >= limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_is_free_without_a_limit() {
        let b = NodeBudget::default();
        b.charge("test", usize::MAX); // must not panic
    }

    #[test]
    fn charge_trips_past_the_baseline() {
        let mut b = NodeBudget::default();
        b.set(Some(2), 10);
        b.charge("test", 10); // growth 0 < 2
        b.charge("test", 11); // growth 1 < 2
        let err = std::panic::catch_unwind(|| b.charge("test", 12)).unwrap_err();
        let cap = err
            .downcast_ref::<CapacityExceeded>()
            .expect("typed payload");
        assert_eq!(cap.limit, 2);
        assert_eq!(cap.arena, "test");
    }

    #[test]
    fn rebase_resets_the_free_region() {
        let mut b = NodeBudget::default();
        b.set(Some(1), 0);
        b.rebase(100);
        b.charge("test", 100); // growth 0
        assert!(std::panic::catch_unwind(|| b.charge("test", 101)).is_err());
    }
}
