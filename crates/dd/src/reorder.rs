//! Variable-order transfer and greedy sifting.
//!
//! The size of a ROBDD depends dramatically on the variable order (the
//! classic example: `x₁x₂ ∨ x₃x₄ ∨ … ∨ x₂ₙ₋₁x₂ₙ` is linear in the pairwise
//! order and exponential in the interleaved one). The managers in this crate
//! use a static order fixed by the circuit's input declaration — the right
//! default for spectral verification, where the order must match the
//! spectral coordinates — but [`transfer`] re-expresses functions under any
//! permutation, and [`sift`] greedily searches for a smaller order, which is
//! useful when unfolding pathological netlists.

use crate::fasthash::{FastMap, FastSet};

use crate::bdd::{Bdd, BddManager};
use crate::var::VarId;

/// Rebuilds `roots` in `dst`, renaming source variable `i` to
/// `var_map[i]`. The destination manager may use a completely different
/// order; the rebuild goes through `ite`, so the results are reduced and
/// ordered for `dst`.
///
/// # Panics
///
/// Panics if `var_map` is shorter than the source manager's variable count
/// or maps to variables outside `dst`.
pub fn transfer(
    src: &BddManager,
    roots: &[Bdd],
    dst: &mut BddManager,
    var_map: &[VarId],
) -> Vec<Bdd> {
    assert!(
        var_map.len() >= src.num_vars() as usize,
        "var_map must cover all source variables"
    );
    let mut memo: FastMap<Bdd, Bdd> = FastMap::default();
    roots
        .iter()
        .map(|&r| transfer_rec(src, r, dst, var_map, &mut memo))
        .collect()
}

fn transfer_rec(
    src: &BddManager,
    f: Bdd,
    dst: &mut BddManager,
    var_map: &[VarId],
    memo: &mut FastMap<Bdd, Bdd>,
) -> Bdd {
    if f == Bdd::FALSE {
        return Bdd::FALSE;
    }
    if f == Bdd::TRUE {
        return Bdd::TRUE;
    }
    if let Some(&r) = memo.get(&f) {
        return r;
    }
    let (var, lo, hi) = src.node(f).expect("non-terminal");
    let tlo = transfer_rec(src, lo, dst, var_map, memo);
    let thi = transfer_rec(src, hi, dst, var_map, memo);
    let v = dst.var(var_map[var.index()]);
    let r = dst.ite(v, thi, tlo);
    memo.insert(f, r);
    r
}

/// Result of a sifting search.
#[derive(Debug)]
pub struct SiftResult {
    /// A fresh manager holding the re-expressed functions.
    pub manager: BddManager,
    /// The transferred roots, in input order.
    pub roots: Vec<Bdd>,
    /// Images of the source manager's outstanding external references
    /// ([`BddManager::external_refs`]) as `(old, new)` pairs. These are
    /// transferred whether or not the caller listed them as roots, and are
    /// re-registered (via [`BddManager::add_ref`]) on the result manager.
    pub protected: Vec<(Bdd, Bdd)>,
    /// `order[i]` = the new level of old variable `i`.
    pub order: Vec<VarId>,
    /// Total distinct nodes of the roots (and protected references) before
    /// sifting.
    pub before: usize,
    /// Total distinct nodes of the roots (and protected references) after
    /// sifting.
    pub after: usize,
}

impl SiftResult {
    /// The new level of old variable `old` under the found order.
    pub fn new_level(&self, old: VarId) -> VarId {
        self.order[old.index()]
    }

    /// The inverse permutation: `inv[new_level] = old variable`. Callers
    /// re-checking functions under the sifted order use this to map results
    /// (e.g. witness coordinates) back into the original numbering.
    pub fn inverse_order(&self) -> Vec<VarId> {
        let mut inv = vec![VarId(0); self.order.len()];
        for (old, &new) in self.order.iter().enumerate() {
            inv[new.index()] = VarId(old as u32);
        }
        inv
    }

    /// The image in [`SiftResult::manager`] of an externally referenced
    /// handle of the source manager, or `None` if `old` was not registered
    /// there at sift time.
    pub fn image_of(&self, old: Bdd) -> Option<Bdd> {
        self.protected
            .iter()
            .find(|&&(o, _)| o == old)
            .map(|&(_, n)| n)
    }
}

/// Distinct arena nodes over the union of all `roots` — the objective
/// [`sift`] minimizes, exposed so callers can gate a reorder on forest
/// size before paying for one.
pub fn total_size(m: &BddManager, roots: &[Bdd]) -> usize {
    // Distinct arena nodes over the union of all roots. Handles are
    // normalized to their regular (complement-stripped) form so a function
    // and its negation — which share every node — are counted once: the
    // objective is real memory, not handle diversity.
    let mut seen: FastSet<_> = FastSet::default();
    let mut stack: Vec<Bdd> = roots.iter().map(|r| r.regular()).collect();
    while let Some(f) = stack.pop() {
        if seen.insert(f) {
            if let Some((_, lo, hi)) = m.node(f) {
                stack.push(lo.regular());
                stack.push(hi.regular());
            }
        }
    }
    seen.len()
}

/// Greedy adjacent-swap sifting: repeatedly swaps neighbouring levels while
/// the total (shared) node count of `roots` shrinks. Rebuild-based —
/// `O(n²)` transfers in the worst case — so intended for up to a few dozen
/// variables, which covers every gadget in the benchmark suite.
///
/// Handles registered on `src` via [`BddManager::add_ref`] are transferred
/// alongside `roots` (they count toward the size objective, since the
/// caller must keep them alive either way) and re-registered on the result
/// manager; their images are reported in [`SiftResult::protected`].
pub fn sift(src: &BddManager, roots: &[Bdd]) -> SiftResult {
    let n = src.num_vars() as usize;
    // The full set that must survive the rewrite: the requested roots plus
    // every outstanding external reference not already among them.
    let externals: Vec<Bdd> = {
        let mut v: Vec<Bdd> = Vec::new();
        for &e in src.external_refs() {
            if !v.contains(&e) {
                v.push(e);
            }
        }
        v
    };
    let mut work: Vec<Bdd> = roots.to_vec();
    for &e in &externals {
        if !work.contains(&e) {
            work.push(e);
        }
    }
    let before = total_size(src, &work);
    // order[i] = current level of original variable i.
    let mut order: Vec<VarId> = (0..n as u32).map(VarId).collect();
    let mut best_mgr = BddManager::new(n as u32);
    let mut best_all = transfer(src, &work, &mut best_mgr, &order);
    let mut best_size = total_size(&best_mgr, &best_all);

    let mut improved = true;
    while improved {
        improved = false;
        for level in 0..n.saturating_sub(1) {
            // Try swapping the variables currently at `level` and `level+1`.
            let mut candidate = order.clone();
            for v in candidate.iter_mut() {
                if v.0 == level as u32 {
                    v.0 = level as u32 + 1;
                } else if v.0 == level as u32 + 1 {
                    v.0 = level as u32;
                }
            }
            let mut mgr = BddManager::new(n as u32);
            let new_all = transfer(src, &work, &mut mgr, &candidate);
            let size = total_size(&mgr, &new_all);
            if size < best_size {
                best_size = size;
                best_mgr = mgr;
                best_all = new_all;
                order = candidate;
                improved = true;
            }
        }
    }
    let protected: Vec<(Bdd, Bdd)> = externals
        .iter()
        .map(|&e| {
            let i = work.iter().position(|&w| w == e).expect("external in work");
            (e, best_all[i])
        })
        .collect();
    for &(_, img) in &protected {
        best_mgr.add_ref(img);
    }
    SiftResult {
        manager: best_mgr,
        roots: best_all[..roots.len()].to_vec(),
        protected,
        order,
        before,
        after: best_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f = x₀x₁ ∨ x₂x₃ ∨ x₄x₅ in the given variable numbering.
    fn pairs(m: &mut BddManager, idx: &[u32; 6]) -> Bdd {
        let lits: Vec<Bdd> = idx.iter().map(|&i| m.var(VarId(i))).collect();
        let p1 = m.and(lits[0], lits[1]);
        let p2 = m.and(lits[2], lits[3]);
        let p3 = m.and(lits[4], lits[5]);
        let t = m.or(p1, p2);
        m.or(t, p3)
    }

    #[test]
    fn transfer_preserves_semantics_under_permutation() {
        let mut src = BddManager::new(4);
        let a = src.var(VarId(0));
        let b = src.var(VarId(1));
        let c = src.var(VarId(2));
        let ab = src.and(a, b);
        let f = src.xor(ab, c);
        // Reverse the order: old var i ↦ new var 3−i.
        let map: Vec<VarId> = (0..4).map(|i| VarId(3 - i)).collect();
        let mut dst = BddManager::new(4);
        let moved = transfer(&src, &[f], &mut dst, &map)[0];
        for asg in 0..16u128 {
            // Build the remapped assignment.
            let mut remapped = 0u128;
            for i in 0..4 {
                if asg >> i & 1 == 1 {
                    remapped |= 1 << (3 - i);
                }
            }
            assert_eq!(src.eval(f, asg), dst.eval(moved, remapped), "asg={asg:b}");
        }
    }

    #[test]
    fn identity_transfer_is_isomorphic() {
        let mut src = BddManager::new(3);
        let x = src.var(VarId(0));
        let y = src.var(VarId(2));
        let f = src.or(x, y);
        let map: Vec<VarId> = (0..3).map(VarId).collect();
        let mut dst = BddManager::new(3);
        let moved = transfer(&src, &[f], &mut dst, &map)[0];
        assert_eq!(src.node_count(f), dst.node_count(moved));
    }

    #[test]
    fn sifting_recovers_the_pairwise_order() {
        // Interleaved order x0x3 ∨ x1x4 ∨ x2x5 is bad; sifting must shrink it.
        let mut src = BddManager::new(6);
        let f = pairs(&mut src, &[0, 3, 1, 4, 2, 5]);
        let bad = src.node_count(f);
        let result = sift(&src, &[f]);
        assert_eq!(result.before, bad);
        assert!(
            result.after < result.before,
            "sifting failed: {} -> {}",
            result.before,
            result.after
        );
        // Semantics preserved under the found order.
        let g = result.roots[0];
        for asg in 0..64u128 {
            let mut remapped = 0u128;
            for i in 0..6 {
                if asg >> i & 1 == 1 {
                    remapped |= 1 << result.order[i].0;
                }
            }
            assert_eq!(src.eval(f, asg), result.manager.eval(g, remapped));
        }
        // The optimal pairwise order has 8 nodes (incl. terminals).
        assert!(result.after <= 8, "after={}", result.after);
    }

    #[test]
    fn sifting_leaves_good_orders_alone() {
        let mut src = BddManager::new(6);
        let f = pairs(&mut src, &[0, 1, 2, 3, 4, 5]);
        let result = sift(&src, &[f]);
        assert_eq!(result.after, result.before);
    }

    #[test]
    fn inverse_order_round_trips() {
        let mut src = BddManager::new(6);
        let f = pairs(&mut src, &[0, 3, 1, 4, 2, 5]);
        let result = sift(&src, &[f]);
        let inv = result.inverse_order();
        for i in 0..6u32 {
            assert_eq!(inv[result.new_level(VarId(i)).index()], VarId(i));
        }
    }

    #[test]
    fn sifting_preserves_external_references() {
        // Regression: an externally held function that is not among the
        // requested roots used to be silently dropped by the rewrite.
        let mut src = BddManager::new(6);
        let f = pairs(&mut src, &[0, 3, 1, 4, 2, 5]);
        let a = src.var(VarId(0));
        let b = src.var(VarId(5));
        let held = src.xor(a, b);
        src.add_ref(held);
        let result = sift(&src, &[f]);
        assert_eq!(result.roots.len(), 1);
        let img = result.image_of(held).expect("external ref transferred");
        assert_eq!(result.protected, vec![(held, img)]);
        // Re-registered on the new manager.
        assert_eq!(result.manager.external_refs(), &[img]);
        // Semantics preserved under the found order.
        for asg in 0..64u128 {
            let mut remapped = 0u128;
            for i in 0..6 {
                if asg >> i & 1 == 1 {
                    remapped |= 1 << result.order[i].0;
                }
            }
            assert_eq!(src.eval(held, asg), result.manager.eval(img, remapped));
        }
        // Unregistered handles have no image.
        assert_eq!(result.image_of(f), None);
    }

    #[test]
    fn shared_roots_are_counted_once() {
        let mut src = BddManager::new(2);
        let x = src.var(VarId(0));
        let y = src.var(VarId(1));
        let f = src.and(x, y);
        let g = src.or(x, y);
        let both = total_size(&src, &[f, g, f]);
        let fs = total_size(&src, &[f]);
        let gs = total_size(&src, &[g]);
        assert!(
            both < fs + gs,
            "sharing must be visible: {both} vs {fs}+{gs}"
        );
    }
}
