//! Benchmark harness reproducing the paper's evaluation.
//!
//! The paper evaluates the MAPI method against the LIL baseline of \[11\], two
//! implementation ablations (MAP, FUJITA) and three external tools
//! (maskVerif, Bloem et al., SILVER) on ten gadgets. This crate provides:
//!
//! * [`run_engine`] — one timed SNI verification of a benchmark gadget with
//!   a given engine, in the paper-faithful configuration;
//! * [`run_heuristic`], [`run_bloem_like`], [`run_silver_like`] — the
//!   Table III comparison columns (see the DESIGN.md substitution notes);
//! * [`tables`] — the paper's published numbers, for side-by-side printing;
//! * the `report` binary — regenerates every table and figure;
//! * the Criterion benches (`benches/`) — statistically sampled timings of
//!   the same workloads plus ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use std::fmt::Write as _;

use walshcheck_core::engine::{EngineKind, VerifyOptions};
use walshcheck_core::exhaustive::exhaustive_check;
use walshcheck_core::heuristic::heuristic_check;
use walshcheck_core::json::Json;
use walshcheck_core::property::Property;
use walshcheck_core::report::json_escape;
use walshcheck_core::session::Session;
use walshcheck_core::sites::SiteOptions;
use walshcheck_core::Backend;
use walshcheck_gadgets::suite::Benchmark;

/// Timing and outcome of one verification run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Gadget name (paper's table row).
    pub gadget: String,
    /// Engine or tool label (paper's table column).
    pub tool: String,
    /// Wall-clock time of the whole check.
    pub total: Duration,
    /// Time spent in base-spectrum computation and convolution.
    pub convolution: Duration,
    /// Time spent testing rows against the property.
    pub verification: Duration,
    /// Verification outcome (all shipped benchmarks are secure at their
    /// design order).
    pub secure: bool,
    /// Number of enumerated probe combinations.
    pub combinations: u64,
    /// Whether the run hit its wall-clock budget (time is a lower bound).
    pub timed_out: bool,
}

/// The property the paper's evaluation checks for a benchmark: SNI at the
/// gadget's design order.
pub fn paper_property(bench: Benchmark) -> Property {
    Property::Sni(bench.security_order())
}

/// Runs one benchmark with one engine in the paper-faithful configuration
/// (row-wise checking, no prefilter, largest combinations first).
///
/// # Panics
///
/// Panics if the generated benchmark netlist is invalid (a bug).
pub fn run_engine(bench: Benchmark, engine: EngineKind) -> RunResult {
    run_engine_with(bench, engine, None)
}

/// Like [`run_engine`] with an optional wall-clock budget: a run that hits
/// the budget reports `timed_out = true` and its time is a lower bound —
/// mirroring how the paper handles the LIL blow-up on keccak-3.
pub fn run_engine_with(
    bench: Benchmark,
    engine: EngineKind,
    time_limit: Option<Duration>,
) -> RunResult {
    let netlist = bench.netlist();
    let mut options = VerifyOptions::paper(engine);
    options.time_limit = time_limit;
    let start = Instant::now();
    let verdict = Session::new(&netlist)
        .expect("benchmark netlists are valid")
        .property(paper_property(bench))
        .options(options)
        .run();
    let total = start.elapsed();
    RunResult {
        gadget: bench.name(),
        tool: engine.to_string(),
        total,
        convolution: verdict.stats.convolution_time,
        verification: verdict.stats.verification_time,
        secure: verdict.secure,
        combinations: verdict.stats.combinations,
        timed_out: verdict.stats.timed_out,
    }
}

/// Runs the maskVerif-style heuristic on a benchmark (Table III column
/// "maskVerif"). Inconclusive results count as completed runs — maskVerif
/// also reports its findings either way.
pub fn run_heuristic(bench: Benchmark) -> RunResult {
    let netlist = bench.netlist();
    let start = Instant::now();
    let verdict = heuristic_check(&netlist, paper_property(bench), &SiteOptions::default())
        .expect("benchmark netlists are valid");
    let total = start.elapsed();
    RunResult {
        gadget: bench.name(),
        tool: "maskVerif-like".into(),
        total,
        convolution: Duration::ZERO,
        verification: Duration::ZERO,
        secure: verdict.secure == Some(true),
        combinations: verdict.stats.combinations,
        timed_out: false,
    }
}

/// Runs the Bloem-et-al.-like check (Table III column "Bloem's"): a
/// first-order-only Fourier-coefficient probing check, as their tool
/// "primarily applies to the first-order circuits and does not consider
/// strong non-interference".
pub fn run_bloem_like(bench: Benchmark) -> RunResult {
    let netlist = bench.netlist();
    let options = VerifyOptions::builder().engine(EngineKind::Map).build();
    let start = Instant::now();
    let verdict = Session::new(&netlist)
        .expect("benchmark netlists are valid")
        .property(Property::Probing(1))
        .options(options)
        .run();
    let total = start.elapsed();
    RunResult {
        gadget: bench.name(),
        tool: "Bloem-like".into(),
        total,
        convolution: verdict.stats.convolution_time,
        verification: verdict.stats.verification_time,
        secure: verdict.secure,
        combinations: verdict.stats.combinations,
        timed_out: false,
    }
}

/// Runs the SILVER-like exact distribution enumeration (Table III column
/// "SILVER"), or `None` when the gadget is too wide to enumerate — the
/// paper's table likewise has `-` entries for benchmarks SILVER lacks.
pub fn run_silver_like(bench: Benchmark) -> Option<RunResult> {
    let netlist = bench.netlist();
    if netlist.inputs.len() > 16 {
        return None;
    }
    let start = Instant::now();
    let verdict = exhaustive_check(&netlist, paper_property(bench), &SiteOptions::default())
        .expect("width checked above");
    let total = start.elapsed();
    Some(RunResult {
        gadget: bench.name(),
        tool: "SILVER-like".into(),
        total,
        convolution: verdict.stats.convolution_time,
        verification: verdict.stats.verification_time,
        secure: verdict.secure,
        combinations: verdict.stats.combinations,
        timed_out: false,
    })
}

/// One row of the parallel-scheduler comparison: the same check timed under
/// the old static modulo sharding and the work-stealing batch scheduler.
#[derive(Debug, Clone)]
pub struct SchedComparison {
    /// Gadget name.
    pub gadget: String,
    /// Worker-thread count of both runs.
    pub threads: usize,
    /// Median wall time of the modulo-sharded baseline.
    pub modulo: Duration,
    /// Median wall time of the work-stealing scheduler.
    pub stealing: Duration,
    /// `modulo / stealing` (> 1 means the scheduler wins).
    pub speedup: f64,
}

/// Times the paper-configuration SNI check of `bench` at `threads` workers
/// under both parallel back-ends, `samples` times each (median reported).
/// Both timings include the full run — netlist setup, unfolding and
/// enumeration — exactly as a caller would pay for them.
///
/// # Panics
///
/// Panics if the generated benchmark netlist is invalid (a bug), or if the
/// two back-ends disagree on the verdict (the scheduler's determinism
/// guarantee would be broken).
pub fn compare_schedulers(bench: Benchmark, threads: usize, samples: usize) -> SchedComparison {
    let netlist = bench.netlist();
    let property = paper_property(bench);
    let options = VerifyOptions::paper(EngineKind::Mapi);
    let mut modulo_s = Vec::new();
    let mut stealing_s = Vec::new();
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let old = walshcheck_core::check_parallel_modulo(&netlist, property, &options, threads)
            .expect("benchmark netlists are valid");
        modulo_s.push(secs(start.elapsed()));

        let start = Instant::now();
        let new = Session::new(&netlist)
            .expect("benchmark netlists are valid")
            .property(property)
            .options(options.clone())
            .threads(threads)
            .run();
        stealing_s.push(secs(start.elapsed()));
        assert_eq!(
            old.secure, new.secure,
            "{bench}: scheduler verdicts diverge"
        );
    }
    let modulo = Duration::from_secs_f64(median(&mut modulo_s));
    let stealing = Duration::from_secs_f64(median(&mut stealing_s));
    SchedComparison {
        gadget: bench.name(),
        threads,
        modulo,
        stealing,
        speedup: secs(modulo) / secs(stealing).max(1e-9),
    }
}

/// One row of the prefix-cache A/B comparison: the same check timed with
/// the cache enabled and disabled.
#[derive(Debug, Clone)]
pub struct CacheComparison {
    /// Gadget name.
    pub gadget: String,
    /// Worker-thread count of both runs.
    pub threads: usize,
    /// Median wall time with the prefix cache enabled.
    pub cached: Duration,
    /// Median wall time with the cache disabled.
    pub uncached: Duration,
    /// `uncached / cached` (> 1 means the cache wins).
    pub speedup: f64,
    /// Prefix-cache hits of the last cached run.
    pub hits: u64,
    /// Prefix-cache misses of the last cached run.
    pub misses: u64,
}

/// The property the cache A/B benchmark checks: NI two orders above the
/// gadget's design order, so the enumeration reaches tuples of three or
/// more probes — where consecutive tuples share convolution prefixes.
pub fn cache_ab_property(bench: Benchmark) -> Property {
    Property::Ni(bench.security_order() + 2)
}

/// Times the cache A/B workload of `bench` at `threads` workers with the
/// prefix cache on and off, `samples` times each (median reported).
///
/// The workload checks [`cache_ab_property`] with the MAP engine in
/// row-wise mode without the prefilter: convolution chains dominate, and
/// every surviving tuple re-derives its proper prefix when the cache is
/// off. Caching is a pure time/memory trade, so the harness asserts the
/// verdict *and* witness are identical before reporting a row.
///
/// # Panics
///
/// Panics if the generated benchmark netlist is invalid (a bug), or if the
/// two modes disagree on the verdict or witness (the cache-transparency
/// guarantee would be broken).
pub fn compare_cache_modes(bench: Benchmark, threads: usize, samples: usize) -> CacheComparison {
    let netlist = bench.netlist();
    let property = cache_ab_property(bench);
    let options = VerifyOptions::builder()
        .engine(EngineKind::Map)
        .mode(walshcheck_core::CheckMode::RowWise)
        .prefilter(false)
        .build();
    let run = |cache: bool| {
        let mut session = Session::new(&netlist)
            .expect("benchmark netlists are valid")
            .property(property)
            .options(options.clone())
            .cache(cache)
            .threads(threads);
        let start = Instant::now();
        let verdict = session.run();
        (secs(start.elapsed()), verdict)
    };
    let mut cached_s = Vec::new();
    let mut uncached_s = Vec::new();
    let mut stats = (0, 0);
    for _ in 0..samples.max(1) {
        let (t_on, on) = run(true);
        cached_s.push(t_on);
        let (t_off, off) = run(false);
        uncached_s.push(t_off);
        assert_eq!(on.secure, off.secure, "{bench}: cache changes the verdict");
        assert_eq!(
            on.witness, off.witness,
            "{bench}: cache changes the witness"
        );
        stats = (on.stats.cache_hits, on.stats.cache_misses);
    }
    let cached = Duration::from_secs_f64(median(&mut cached_s));
    let uncached = Duration::from_secs_f64(median(&mut uncached_s));
    CacheComparison {
        gadget: bench.name(),
        threads,
        cached,
        uncached,
        speedup: secs(uncached) / secs(cached).max(1e-9),
        hits: stats.0,
        misses: stats.1,
    }
}

/// One row of the DD-backend A/B comparison: the same check timed on the
/// per-worker private arenas and on the shared concurrent store.
#[derive(Debug, Clone)]
pub struct BackendComparison {
    /// Gadget name.
    pub gadget: String,
    /// Worker-thread count of both runs.
    pub threads: usize,
    /// Median wall time on [`Backend::Private`].
    pub private: Duration,
    /// Median wall time on [`Backend::Shared`].
    pub shared: Duration,
    /// `shared / private` (< 1 means the shared store wins; at one thread
    /// this is the shared backend's synchronization overhead).
    pub overhead: f64,
}

/// Times the paper-configuration SNI check of `bench` at `threads` workers
/// on both DD backends, `samples` times each (median reported).
///
/// The backend is a pure speed/memory knob (DESIGN.md §14), so the harness
/// asserts verdict *and* witness equality before reporting a row.
///
/// # Panics
///
/// Panics if the generated benchmark netlist is invalid (a bug), or if the
/// two backends disagree on the verdict or witness (the backend-neutrality
/// guarantee would be broken).
pub fn compare_backends(bench: Benchmark, threads: usize, samples: usize) -> BackendComparison {
    let netlist = bench.netlist();
    let property = paper_property(bench);
    let options = VerifyOptions::paper(EngineKind::Mapi);
    let run = |backend: Backend| {
        let mut session = Session::new(&netlist)
            .expect("benchmark netlists are valid")
            .property(property)
            .options(options.clone())
            .dd_backend(backend)
            .threads(threads);
        let start = Instant::now();
        let verdict = session.run();
        (secs(start.elapsed()), verdict)
    };
    let mut private_s = Vec::new();
    let mut shared_s = Vec::new();
    let mut ratios = Vec::new();
    for i in 0..samples.max(1) {
        // Alternate which backend goes first: whichever runs second in a
        // pair inherits the first's allocator and branch-predictor state,
        // and flipping the order each iteration cancels that bias.
        let ((t_p, p), (t_s, s)) = if i % 2 == 0 {
            let p = run(Backend::Private);
            (p, run(Backend::Shared))
        } else {
            let s = run(Backend::Shared);
            (run(Backend::Private), s)
        };
        private_s.push(t_p);
        shared_s.push(t_s);
        ratios.push(t_s / t_p.max(1e-9));
        assert_eq!(p.secure, s.secure, "{bench}: backend changes the verdict");
        assert_eq!(p.witness, s.witness, "{bench}: backend changes the witness");
    }
    // The overhead is the median of the *paired* per-iteration ratios, not
    // the ratio of the medians: the backends alternate within one process,
    // so pairing cancels the machine's frequency and load drift, which on
    // a busy box is larger than the effect being measured.
    BackendComparison {
        gadget: bench.name(),
        threads,
        private: Duration::from_secs_f64(median(&mut private_s)),
        shared: Duration::from_secs_f64(median(&mut shared_s)),
        overhead: median(&mut ratios),
    }
}

/// Serializes a [`Json`] value with two-space indentation — the perf
/// trajectory files (BENCH_*.json) are checked into the repository, so they
/// should diff well. Shared by the `report` and `bench_backends` binaries.
pub fn emit_json_pretty(j: &Json) -> String {
    fn emit(j: &Json, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match j {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                let _ = write!(out, "{f}");
            }
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", json_escape(s));
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    emit(item, indent + 1, out);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"{}\": ", json_escape(k));
                    emit(v, indent + 1, out);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
    let mut out = String::new();
    emit(j, 0, &mut out);
    out.push('\n');
    out
}

/// Rounds a seconds value to microsecond precision so checked-in perf files
/// stay stable and readable.
pub fn round_secs(s: f64) -> f64 {
    (s * 1e6).round() / 1e6
}

/// Median of a sequence of `f64` values (0.0 for an empty slice).
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Seconds as used in the paper's tables.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// The paper's published measurements, for side-by-side comparison.
pub mod tables {
    /// Table I rows: (gadget, LIL seconds, MAPI seconds, speed-up).
    pub const TABLE1: &[(&str, f64, f64, f64)] = &[
        ("ti-1", 0.00367, 0.00194, 1.89),
        ("trichina-1", 0.00248, 0.00129, 1.93),
        ("isw-1", 0.00276, 0.00157, 1.76),
        ("dom-1", 0.00272, 0.00145, 1.87),
        ("keccak-1", 0.05506, 0.02633, 2.09),
        ("dom-2", 0.02478, 0.02731, 0.91),
        ("keccak-2", 106.60330, 2.39039, 44.6),
        ("dom-3", 2.38042, 3.29725, 0.72),
        ("keccak-3", 1_482_378.911_97, 351.71293, 4214.74),
        ("dom-4", 756.00070, 740.17401, 1.02),
    ];

    /// Paper's Table I median MAPI-vs-LIL speed-up.
    pub const TABLE1_MEDIAN_SPEEDUP: f64 = 1.88;

    /// Table II rows: (gadget, LIL, FUJITA, MAP speed-ups w.r.t. MAPI).
    pub const TABLE2: &[(&str, f64, f64, f64)] = &[
        ("ti-1", 1.89, 6.70, 1.94),
        ("trichina-1", 1.93, 10.83, 1.96),
        ("isw-1", 1.76, 9.08, 1.79),
        ("dom-1", 1.87, 9.74, 1.84),
        ("keccak-1", 2.09, 1.37, 2.10),
        ("dom-2", 0.91, 2.44, 0.84),
        ("keccak-2", 44.6, 5.19, 30.89),
        ("dom-3", 0.72, 1.75, 0.57),
        ("keccak-3", 4214.74, 34.76, 1629.05),
        ("dom-4", 1.02, 1.43, 0.56),
    ];

    /// Table III rows: (gadget, maskVerif s, Bloem s (upper bound), SILVER
    /// s or NaN for `-`, MAPI s).
    pub const TABLE3: &[(&str, f64, f64, f64, f64)] = &[
        ("ti-1", 0.01, 1.0, f64::NAN, 0.0019),
        ("trichina-1", 0.01, 1.0, f64::NAN, 0.0013),
        ("isw-1", 0.01, 1.0, f64::NAN, 0.0016),
        ("dom-1", 0.01, 1.0, 0.0, 0.0015),
        ("keccak-1", 0.01, 1.0, f64::NAN, 0.0263),
        ("dom-2", 0.01, 1.0, 0.0, 0.0273),
        ("keccak-2", 0.2, 10.0, f64::NAN, 2.3904),
        ("dom-3", 0.04, 4.0, 3.7, 3.2972),
        ("keccak-3", 41.0, 240.0, f64::NAN, 351.7129),
        ("dom-4", 0.34, 120.0, f64::NAN, 740.1740),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn paper_tables_cover_all_ten_benchmarks() {
        assert_eq!(tables::TABLE1.len(), 10);
        assert_eq!(tables::TABLE2.len(), 10);
        assert_eq!(tables::TABLE3.len(), 10);
        for b in Benchmark::all() {
            assert!(
                tables::TABLE1.iter().any(|&(g, ..)| g == b.name()),
                "{b} missing from TABLE1"
            );
        }
    }

    #[test]
    fn run_engine_produces_secure_verdicts_on_small_gadgets() {
        // dom-1 is 1-SNI; ti-1 is (correctly) not — both engines must agree.
        for b in [Benchmark::Ti1, Benchmark::Dom(1)] {
            let lil = run_engine(b, EngineKind::Lil);
            let mapi = run_engine(b, EngineKind::Mapi);
            assert_eq!(lil.secure, mapi.secure, "{b}");
            assert!(lil.combinations > 0);
        }
        assert!(run_engine(Benchmark::Dom(1), EngineKind::Mapi).secure);
        assert!(!run_engine(Benchmark::Ti1, EngineKind::Mapi).secure);
    }

    #[test]
    fn comparison_tools_run() {
        let h = run_heuristic(Benchmark::Dom(1));
        assert!(h.secure);
        let bl = run_bloem_like(Benchmark::Dom(1));
        assert!(bl.secure);
        let s = run_silver_like(Benchmark::Dom(1)).expect("narrow gadget");
        assert!(s.secure);
        // keccak-3 (50 inputs) exceeds the SILVER-like width limit.
        assert!(run_silver_like(Benchmark::Keccak(3)).is_none());
    }
}
