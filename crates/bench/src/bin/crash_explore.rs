//! Stand-alone driver for the crash-point explorer (DESIGN.md §16).
//!
//! ```text
//! cargo run --release -p walshcheck-bench --bin crash_explore [gadget] [order]
//! ```
//!
//! Records one `walshcheckd` job lifecycle (submit → sweep → done) for the
//! chosen gadget through the tracing I/O layer, then walks the **full**
//! crash matrix: every prefix of the recorded schedule × every page-cache
//! crash mode, recovering each materialized tree and comparing the
//! re-derived `report.json` byte-for-byte against the uninterrupted run.
//! Prints a per-mode summary; exits nonzero on the first invariant
//! violation. Defaults: `dom-1` (the schedule `tests/crash_matrix.rs`
//! pins), SNI at the gadget's natural order, one worker.
//!
//! This is the ad-hoc investigation tool — point it at a bigger gadget to
//! stress a longer schedule, or edit the store and watch which crash point
//! breaks first. The CI-facing exhaustive run lives in
//! `tests/crash_matrix.rs` (the `crash-matrix` job).

use std::process::ExitCode;

use walshcheck_circuit::ilang::write_ilang;
use walshcheck_core::iofs::CrashMode;
use walshcheck_core::json;
use walshcheck_core::{JobSpec, Property};
use walshcheck_daemon::crashsim;
use walshcheck_daemon::store::FsyncEvents;
use walshcheck_gadgets::suite::Benchmark;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let gadget_name = args.next().unwrap_or_else(|| "dom-1".into());
    let Some(gadget) = Benchmark::all()
        .into_iter()
        .find(|b| b.name() == gadget_name)
    else {
        eprintln!("unknown gadget `{gadget_name}`");
        eprintln!(
            "known: {}",
            Benchmark::all()
                .iter()
                .map(Benchmark::name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    };
    let order: u32 = args
        .next()
        .map(|a| a.parse().expect("order must be a number"))
        .unwrap_or_else(|| gadget.security_order());

    let netlist = write_ilang(&gadget.netlist());
    let mut spec = JobSpec::new(Property::Sni(order));
    spec.threads = 1;
    let spec_doc = json::parse(&spec.to_json().to_canonical()).expect("spec doc");

    let root = std::env::temp_dir().join(format!("crash-explore-{}", std::process::id()));
    let lifecycle = match crashsim::record_lifecycle(&root, &spec_doc, &netlist, FsyncEvents::Never)
    {
        Ok(lc) => lc,
        Err(e) => {
            eprintln!("recording lifecycle: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "gadget {gadget_name}: job {} traced, {} I/O ops -> {} crash points x {} modes",
        lifecycle.job_id,
        lifecycle.ops.len(),
        lifecycle.ops.len() + 1,
        CrashMode::ALL.len()
    );

    let crash_root = root.with_file_name(format!("crash-explore-mat-{}", std::process::id()));
    let mut failures = 0usize;
    for mode in CrashMode::ALL {
        let mut ok = 0usize;
        let mut resubmitted = 0usize;
        for prefix in 0..=lifecycle.ops.len() {
            match crashsim::crash_and_recover(
                &lifecycle,
                prefix,
                mode,
                &crash_root,
                &spec_doc,
                &netlist,
            ) {
                Ok(rec) if rec.report == lifecycle.report => {
                    ok += 1;
                    resubmitted += usize::from(rec.resubmitted);
                }
                Ok(_) => {
                    failures += 1;
                    eprintln!(
                        "{}: crash before op {prefix} ({}): report bytes diverged",
                        mode.as_str(),
                        lifecycle
                            .ops
                            .get(prefix)
                            .map_or("end".to_string(), |op| op.describe())
                    );
                }
                Err(e) => {
                    failures += 1;
                    eprintln!(
                        "{}: crash before op {prefix} ({}): {e}",
                        mode.as_str(),
                        lifecycle
                            .ops
                            .get(prefix)
                            .map_or("end".to_string(), |op| op.describe())
                    );
                }
            }
        }
        println!(
            "{:<14} {:>4} points recovered byte-identically ({} via resubmit)",
            mode.as_str(),
            ok,
            resubmitted
        );
    }
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&crash_root);
    if failures > 0 {
        eprintln!("{failures} crash points violated the recovery invariants");
        return ExitCode::FAILURE;
    }
    println!("all crash points recovered byte-identically");
    ExitCode::SUCCESS
}
