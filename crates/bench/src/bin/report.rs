//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! report [--full] [table1|table2|table3|fig6|fig7|all]
//! ```
//!
//! By default the quick benchmark set is used (orders ≤ 2 plus dom-3);
//! `--full` runs all ten gadgets including keccak-3 and dom-4. Absolute
//! times differ from the paper (different machine, Rust reimplementation);
//! the reproduced quantities are the *ratios* between engines on identical
//! workloads. Figures are emitted as CSV series ready for plotting.

use std::time::Duration;

use walshcheck_bench::{
    median, run_bloem_like, run_engine_with, run_heuristic, run_silver_like, secs, tables,
    RunResult,
};
use walshcheck_core::engine::EngineKind;
use walshcheck_gadgets::suite::Benchmark;

fn bench_set(full: bool) -> Vec<Benchmark> {
    if full {
        Benchmark::all()
    } else {
        let mut v = Benchmark::fast();
        v.push(Benchmark::Keccak(2));
        v.push(Benchmark::Dom(3));
        v
    }
}

fn run_all_engines(
    benches: &[Benchmark],
    limit: Option<Duration>,
) -> Vec<(Benchmark, [RunResult; 4])> {
    benches
        .iter()
        .map(|&b| {
            eprintln!("running {b} ...");
            (
                b,
                [
                    run_engine_with(b, EngineKind::Lil, limit),
                    run_engine_with(b, EngineKind::Fujita, limit),
                    run_engine_with(b, EngineKind::Map, limit),
                    run_engine_with(b, EngineKind::Mapi, limit),
                ],
            )
        })
        .collect()
}

/// Formats seconds, flagging timed-out lower bounds with `>`.
fn fmt_secs(r: &RunResult) -> String {
    if r.timed_out {
        format!(">{:.2}", secs(r.total))
    } else {
        format!("{:.5}", secs(r.total))
    }
}

fn table1(results: &[(Benchmark, [RunResult; 4])]) {
    println!("\nTABLE I — LIL vs MAPI (seconds); paper's speed-up in brackets");
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>9}",
        "gadget", "LIL", "MAPI", "speed-up", "[paper]"
    );
    let mut speedups = Vec::new();
    for (b, [lil, _, _, mapi]) in results {
        let s = secs(lil.total) / secs(mapi.total);
        speedups.push(s);
        let paper = tables::TABLE1
            .iter()
            .find(|&&(g, ..)| g == b.name())
            .map(|&(_, _, _, sp)| sp)
            .unwrap_or(f64::NAN);
        println!(
            "{:<12} {:>12} {:>12} {:>9.2} {:>9.2}",
            b.name(),
            fmt_secs(lil),
            fmt_secs(mapi),
            s,
            paper
        );
        if !lil.timed_out && !mapi.timed_out {
            assert_eq!(lil.secure, mapi.secure, "{b}: engines disagree");
        }
    }
    println!(
        "{:<12} {:>12} {:>12} {:>9.2} {:>9.2}",
        "median",
        "",
        "",
        median(&mut speedups),
        tables::TABLE1_MEDIAN_SPEEDUP
    );
}

fn table2(results: &[(Benchmark, [RunResult; 4])]) {
    println!("\nTABLE II — speed-up of MAPI w.r.t. each method; paper values in brackets");
    println!(
        "{:<12} {:>16} {:>16} {:>16} {:>12}",
        "gadget", "LIL", "FUJITA", "MAP", "best"
    );
    let (mut sl, mut sf, mut sm) = (Vec::new(), Vec::new(), Vec::new());
    for (b, [lil, fujita, map, mapi]) in results {
        let m = secs(mapi.total);
        let (l, f, p) = (
            secs(lil.total) / m,
            secs(fujita.total) / m,
            secs(map.total) / m,
        );
        sl.push(l);
        sf.push(f);
        sm.push(p);
        let paper = tables::TABLE2.iter().find(|&&(g, ..)| g == b.name());
        let (pl, pf, pm) =
            paper
                .map(|&(_, a, b, c)| (a, b, c))
                .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        let best = [
            ("LIL", secs(lil.total)),
            ("FUJITA", secs(fujita.total)),
            ("MAP", secs(map.total)),
            ("MAPI", m),
        ]
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
        .expect("non-empty")
        .0;
        println!(
            "{:<12} {:>7.2} [{:>6.2}] {:>7.2} [{:>6.2}] {:>7.2} [{:>6.2}] {:>12}",
            b.name(),
            l,
            pl,
            f,
            pf,
            p,
            pm,
            best
        );
    }
    println!(
        "{:<12} {:>16.2} {:>16.2} {:>16.2}",
        "median",
        median(&mut sl),
        median(&mut sf),
        median(&mut sm)
    );
}

fn table3(benches: &[Benchmark], results: &[(Benchmark, [RunResult; 4])]) {
    println!("\nTABLE III — heuristic and exact tools (seconds); `-` = not applicable");
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>12}",
        "gadget", "maskVerif-like", "Bloem-like", "SILVER-like", "MAPI"
    );
    for &b in benches {
        let h = run_heuristic(b);
        let bl = run_bloem_like(b);
        let sv = run_silver_like(b);
        let mapi = &results.iter().find(|(g, _)| *g == b).expect("present").1[3];
        let sv_str = sv.map_or("-".to_string(), |r| format!("{:.5}", secs(r.total)));
        println!(
            "{:<12} {:>14.5} {:>12.5} {:>12} {:>12.5}",
            b.name(),
            secs(h.total),
            secs(bl.total),
            sv_str,
            secs(mapi.total)
        );
    }
}

fn fig6(results: &[(Benchmark, [RunResult; 4])]) {
    println!("\nFIG 6 (CSV) — overall/convolution/verification, LIL vs MAPI");
    println!("gadget,engine,overall_s,convolution_s,verification_s");
    for (b, runs) in results {
        for r in [&runs[0], &runs[3]] {
            println!(
                "{},{},{:.6},{:.6},{:.6}",
                b.name(),
                r.tool,
                secs(r.total),
                secs(r.convolution),
                secs(r.verification)
            );
        }
    }
}

fn fig7(results: &[(Benchmark, [RunResult; 4])]) {
    println!("\nFIG 7 (CSV) — overall time of every engine");
    println!("gadget,engine,overall_s");
    for (b, runs) in results {
        for r in runs {
            println!("{},{},{:.6}", b.name(), r.tool, secs(r.total));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let what = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find(|a| a.parse::<u64>().is_err())
        .cloned()
        .unwrap_or_else(|| "all".into());

    let limit = args
        .iter()
        .position(|a| a == "--limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
        .or(if full {
            Some(Duration::from_secs(900))
        } else {
            None
        });

    let benches = bench_set(full);
    let results = run_all_engines(&benches, limit);

    match what.as_str() {
        "table1" => table1(&results),
        "table2" => table2(&results),
        "table3" => table3(&benches, &results),
        "fig6" => fig6(&results),
        "fig7" => fig7(&results),
        "all" => {
            table1(&results);
            table2(&results);
            table3(&benches, &results);
            fig6(&results);
            fig7(&results);
        }
        other => {
            eprintln!("unknown report `{other}`; use table1|table2|table3|fig6|fig7|all");
            std::process::exit(2);
        }
    }
}
