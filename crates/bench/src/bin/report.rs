//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! report [--full] [--limit SECS] [table1|table2|table3|fig6|fig7|all]
//! report --json BENCH_5.json [--label NAME] [--samples N] [--full]
//! report --perf-smoke BENCH_5.json [--factor F] [--samples N]
//! report --table1-smoke BENCH_10.json [--factor F] [--samples N]
//! ```
//!
//! By default the quick benchmark set is used (orders ≤ 2 plus dom-3);
//! `--full` runs all ten gadgets including keccak-3 and dom-4. Absolute
//! times differ from the paper (different machine, Rust reimplementation);
//! the reproduced quantities are the *ratios* between engines on identical
//! workloads. Figures are emitted as CSV series ready for plotting.
//!
//! `--json` records the machine-readable perf trajectory: per-gadget
//! LIL/FUJITA/MAP/MAPI medians over `--samples` runs (default 5) plus the
//! Table I MAPI-vs-LIL speedup median, appended as a labeled run to the
//! given file (an existing run with the same label is replaced, everything
//! else is preserved — the file is the project's perf history).
//!
//! `--perf-smoke` is the CI regression guard: it re-times the dom-2 and
//! keccak-1 MAPI checks and exits non-zero if either median regresses more
//! than `--factor` (default 1.5, generous to tolerate CI noise) against the
//! last recorded run in the file.
//!
//! `--table1-smoke` guards the high-order speed knobs specifically: it
//! re-times the dom-2 MAPI check against the last recorded run with a
//! tight default factor (1.1 — the knobs must not cost what they bought),
//! then runs a determinism A/B on the same gadget — report/5 artifacts
//! across dense kernel on/off × sift auto/off × 1/4 workers must be
//! byte-identical, since none of the knobs is part of the job identity.
//! The perf leg compares the Table I *speed-up* (LIL/MAPI) rather than
//! absolute seconds so machine speed and CI load cancel out.

use std::collections::BTreeMap;
use std::time::Duration;

use walshcheck_bench::{
    emit_json_pretty, median, paper_property, round_secs, run_bloem_like, run_engine_with,
    run_heuristic, run_silver_like, secs, tables, RunResult,
};
use walshcheck_core::engine::EngineKind;
use walshcheck_core::json::{self, Json};
use walshcheck_gadgets::suite::Benchmark;

fn bench_set(full: bool) -> Vec<Benchmark> {
    if full {
        Benchmark::all()
    } else {
        let mut v = Benchmark::fast();
        v.push(Benchmark::Keccak(2));
        v.push(Benchmark::Dom(3));
        v
    }
}

fn run_all_engines(
    benches: &[Benchmark],
    limit: Option<Duration>,
) -> Vec<(Benchmark, [RunResult; 4])> {
    benches
        .iter()
        .map(|&b| {
            eprintln!("running {b} ...");
            (
                b,
                [
                    run_engine_with(b, EngineKind::Lil, limit),
                    run_engine_with(b, EngineKind::Fujita, limit),
                    run_engine_with(b, EngineKind::Map, limit),
                    run_engine_with(b, EngineKind::Mapi, limit),
                ],
            )
        })
        .collect()
}

/// Formats seconds, flagging timed-out lower bounds with `>`.
fn fmt_secs(r: &RunResult) -> String {
    if r.timed_out {
        format!(">{:.2}", secs(r.total))
    } else {
        format!("{:.5}", secs(r.total))
    }
}

fn table1(results: &[(Benchmark, [RunResult; 4])]) {
    println!("\nTABLE I — LIL vs MAPI (seconds); paper's speed-up in brackets");
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>9}",
        "gadget", "LIL", "MAPI", "speed-up", "[paper]"
    );
    let mut speedups = Vec::new();
    for (b, [lil, _, _, mapi]) in results {
        let s = secs(lil.total) / secs(mapi.total);
        speedups.push(s);
        let paper = tables::TABLE1
            .iter()
            .find(|&&(g, ..)| g == b.name())
            .map(|&(_, _, _, sp)| sp)
            .unwrap_or(f64::NAN);
        println!(
            "{:<12} {:>12} {:>12} {:>9.2} {:>9.2}",
            b.name(),
            fmt_secs(lil),
            fmt_secs(mapi),
            s,
            paper
        );
        if !lil.timed_out && !mapi.timed_out {
            assert_eq!(lil.secure, mapi.secure, "{b}: engines disagree");
        }
    }
    println!(
        "{:<12} {:>12} {:>12} {:>9.2} {:>9.2}",
        "median",
        "",
        "",
        median(&mut speedups),
        tables::TABLE1_MEDIAN_SPEEDUP
    );
}

fn table2(results: &[(Benchmark, [RunResult; 4])]) {
    println!("\nTABLE II — speed-up of MAPI w.r.t. each method; paper values in brackets");
    println!(
        "{:<12} {:>16} {:>16} {:>16} {:>12}",
        "gadget", "LIL", "FUJITA", "MAP", "best"
    );
    let (mut sl, mut sf, mut sm) = (Vec::new(), Vec::new(), Vec::new());
    for (b, [lil, fujita, map, mapi]) in results {
        let m = secs(mapi.total);
        let (l, f, p) = (
            secs(lil.total) / m,
            secs(fujita.total) / m,
            secs(map.total) / m,
        );
        sl.push(l);
        sf.push(f);
        sm.push(p);
        let paper = tables::TABLE2.iter().find(|&&(g, ..)| g == b.name());
        let (pl, pf, pm) =
            paper
                .map(|&(_, a, b, c)| (a, b, c))
                .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        let best = [
            ("LIL", secs(lil.total)),
            ("FUJITA", secs(fujita.total)),
            ("MAP", secs(map.total)),
            ("MAPI", m),
        ]
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
        .expect("non-empty")
        .0;
        println!(
            "{:<12} {:>7.2} [{:>6.2}] {:>7.2} [{:>6.2}] {:>7.2} [{:>6.2}] {:>12}",
            b.name(),
            l,
            pl,
            f,
            pf,
            p,
            pm,
            best
        );
    }
    println!(
        "{:<12} {:>16.2} {:>16.2} {:>16.2}",
        "median",
        median(&mut sl),
        median(&mut sf),
        median(&mut sm)
    );
}

fn table3(benches: &[Benchmark], results: &[(Benchmark, [RunResult; 4])]) {
    println!("\nTABLE III — heuristic and exact tools (seconds); `-` = not applicable");
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>12}",
        "gadget", "maskVerif-like", "Bloem-like", "SILVER-like", "MAPI"
    );
    for &b in benches {
        let h = run_heuristic(b);
        let bl = run_bloem_like(b);
        let sv = run_silver_like(b);
        let mapi = &results.iter().find(|(g, _)| *g == b).expect("present").1[3];
        let sv_str = sv.map_or("-".to_string(), |r| format!("{:.5}", secs(r.total)));
        println!(
            "{:<12} {:>14.5} {:>12.5} {:>12} {:>12.5}",
            b.name(),
            secs(h.total),
            secs(bl.total),
            sv_str,
            secs(mapi.total)
        );
    }
}

fn fig6(results: &[(Benchmark, [RunResult; 4])]) {
    println!("\nFIG 6 (CSV) — overall/convolution/verification, LIL vs MAPI");
    println!("gadget,engine,overall_s,convolution_s,verification_s");
    for (b, runs) in results {
        for r in [&runs[0], &runs[3]] {
            println!(
                "{},{},{:.6},{:.6},{:.6}",
                b.name(),
                r.tool,
                secs(r.total),
                secs(r.convolution),
                secs(r.verification)
            );
        }
    }
}

fn fig7(results: &[(Benchmark, [RunResult; 4])]) {
    println!("\nFIG 7 (CSV) — overall time of every engine");
    println!("gadget,engine,overall_s");
    for (b, runs) in results {
        for r in runs {
            println!("{},{},{:.6}", b.name(), r.tool, secs(r.total));
        }
    }
}

/// The engine column order used by the JSON records.
const ENGINES: [(EngineKind, &str); 4] = [
    (EngineKind::Lil, "lil"),
    (EngineKind::Fujita, "fujita"),
    (EngineKind::Map, "map"),
    (EngineKind::Mapi, "mapi"),
];

/// Median wall-clock seconds of `samples` runs of each engine on `bench`.
fn engine_medians(bench: Benchmark, samples: usize, limit: Option<Duration>) -> [f64; 4] {
    ENGINES.map(|(engine, _)| {
        let mut times: Vec<f64> = (0..samples)
            .map(|_| secs(run_engine_with(bench, engine, limit).total))
            .collect();
        median(&mut times)
    })
}

/// Runs the perf-trajectory measurement and records it in `path` under
/// `label` (see the module docs for the file layout).
fn json_mode(path: &str, label: &str, samples: usize, full: bool, limit: Option<Duration>) {
    let benches = bench_set(full);
    let mut gadgets = Vec::new();
    let mut speedups = Vec::new();
    for &b in &benches {
        eprintln!("measuring {b} ({samples} samples per engine) ...");
        let m = engine_medians(b, samples, limit);
        let speedup = m[0] / m[3].max(1e-9);
        speedups.push(speedup);
        let mut entry = BTreeMap::new();
        entry.insert("gadget".to_string(), Json::Str(b.name()));
        for (i, (_, key)) in ENGINES.iter().enumerate() {
            entry.insert(key.to_string(), Json::Float(round_secs(m[i])));
        }
        entry.insert(
            "table1_speedup".to_string(),
            Json::Float(round_secs(speedup)),
        );
        gadgets.push(Json::Obj(entry));
    }
    let mut run = BTreeMap::new();
    run.insert("label".to_string(), Json::Str(label.to_string()));
    run.insert("samples".to_string(), Json::Int(samples as i64));
    run.insert("gadgets".to_string(), Json::Arr(gadgets));
    run.insert(
        "table1_speedup_median".to_string(),
        Json::Float(round_secs(median(&mut speedups))),
    );

    // Merge with the existing history: drop any run with the same label,
    // keep everything else in order, append the new run last (perf-smoke
    // uses the last run as its baseline).
    let mut runs: Vec<Json> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|doc| doc.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec))
        .unwrap_or_default();
    runs.retain(|r| r.get("label").and_then(Json::as_str) != Some(label));
    runs.push(Json::Obj(run));

    let mut doc = BTreeMap::new();
    doc.insert(
        "schema".to_string(),
        Json::Str("walshcheck-bench/perf-1".to_string()),
    );
    doc.insert("runs".to_string(), Json::Arr(runs));
    std::fs::write(path, emit_json_pretty(&Json::Obj(doc))).expect("perf file writable");
    eprintln!("recorded run `{label}` in {path}");
}

/// The gadgets guarded by the CI smoke job: small enough to run on every
/// push, big enough that a kernel regression shows up in the timing.
const SMOKE_GADGETS: [&str; 2] = ["dom-2", "keccak-1"];

/// Compares fresh MAPI medians against the last recorded run in `path`;
/// exits non-zero if any gadget regressed more than `factor`.
fn perf_smoke(path: &str, factor: f64, samples: usize) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf-smoke: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("perf-smoke: cannot parse {path}: {e}");
        std::process::exit(2);
    });
    let baseline = doc
        .get("runs")
        .and_then(Json::as_arr)
        .and_then(<[Json]>::last)
        .unwrap_or_else(|| {
            eprintln!("perf-smoke: {path} has no recorded runs");
            std::process::exit(2);
        });
    let base_label = baseline
        .get("label")
        .and_then(Json::as_str)
        .unwrap_or("<unlabeled>");
    let mut failed = false;
    println!("perf-smoke vs `{base_label}` (fail factor {factor})");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "gadget", "baseline_s", "current_s", "ratio"
    );
    for name in SMOKE_GADGETS {
        let base = baseline
            .get("gadgets")
            .and_then(Json::as_arr)
            .and_then(|gs| {
                gs.iter()
                    .find(|g| g.get("gadget").and_then(Json::as_str) == Some(name))
            })
            .and_then(|g| g.get("mapi"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| {
                eprintln!("perf-smoke: no mapi baseline for {name} in {path}");
                std::process::exit(2);
            });
        let bench = Benchmark::all()
            .into_iter()
            .find(|b| b.name() == name)
            .expect("smoke gadget exists");
        let mut times: Vec<f64> = (0..samples)
            .map(|_| secs(run_engine_with(bench, EngineKind::Mapi, None).total))
            .collect();
        let current = median(&mut times);
        let ratio = current / base.max(1e-9);
        println!("{name:<12} {base:>12.6} {current:>12.6} {ratio:>8.2}");
        if ratio > factor {
            eprintln!("perf-smoke: {name} MAPI regressed {ratio:.2}x (limit {factor}x)");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("perf-smoke: ok");
}

/// The gadget guarded by the table1 smoke: the smallest second-order
/// benchmark, so both the dense kernel and the screen are exercised on
/// every push without the job dominating CI time.
const TABLE1_SMOKE_GADGET: &str = "dom-2";

/// Guards PR-10's speed knobs: the dom-2 Table I speed-up (LIL/MAPI) must
/// not drop more than `factor` below the last recorded run, and report/5
/// artifacts must stay byte-identical across the knob matrix.
fn table1_smoke(path: &str, factor: f64, samples: usize) {
    use walshcheck_core::engine::SiftMode;
    use walshcheck_core::{Job, JobSpec, Report, VerifyOptions};

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("table1-smoke: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("table1-smoke: cannot parse {path}: {e}");
        std::process::exit(2);
    });
    let baseline = doc
        .get("runs")
        .and_then(Json::as_arr)
        .and_then(<[Json]>::last)
        .unwrap_or_else(|| {
            eprintln!("table1-smoke: {path} has no recorded runs");
            std::process::exit(2);
        });
    let base_label = baseline
        .get("label")
        .and_then(Json::as_str)
        .unwrap_or("<unlabeled>");
    let base_speedup = baseline
        .get("gadgets")
        .and_then(Json::as_arr)
        .and_then(|gs| {
            gs.iter()
                .find(|g| g.get("gadget").and_then(Json::as_str) == Some(TABLE1_SMOKE_GADGET))
        })
        .and_then(|g| g.get("table1_speedup"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| {
            eprintln!("table1-smoke: no {TABLE1_SMOKE_GADGET} table1_speedup in {path}");
            std::process::exit(2);
        });

    // Perf leg: the speed-up ratio is machine-independent (LIL and MAPI
    // run on the same box under the same load), so the tight factor holds
    // on CI runners that are much slower than the recording machine.
    let bench = Benchmark::all()
        .into_iter()
        .find(|b| b.name() == TABLE1_SMOKE_GADGET)
        .expect("smoke gadget exists");
    let mut lil: Vec<f64> = Vec::new();
    let mut mapi: Vec<f64> = Vec::new();
    for _ in 0..samples {
        lil.push(secs(run_engine_with(bench, EngineKind::Lil, None).total));
        mapi.push(secs(run_engine_with(bench, EngineKind::Mapi, None).total));
    }
    let current = median(&mut lil) / median(&mut mapi).max(1e-9);
    println!(
        "table1-smoke vs `{base_label}`: {TABLE1_SMOKE_GADGET} speed-up {current:.3} \
         (baseline {base_speedup:.3}, fail below {:.3})",
        base_speedup / factor
    );
    let mut failed = false;
    if current < base_speedup / factor {
        eprintln!(
            "table1-smoke: {TABLE1_SMOKE_GADGET} speed-up regressed {:.2}x (limit {factor}x)",
            base_speedup / current.max(1e-9)
        );
        failed = true;
    }

    // Determinism leg: one base artifact, then every A/B leg of the knob
    // matrix must reproduce its exact bytes and hash.
    let netlist = bench.netlist();
    let artifact = |dense_cut: u32, sift: SiftMode, threads: usize| {
        let mut spec = JobSpec::new(paper_property(bench));
        spec.options = VerifyOptions::paper(EngineKind::Mapi);
        spec.options.dense_cut = dense_cut;
        spec.options.sift = sift;
        spec.threads = threads;
        let mut job = Job::new(&netlist, spec).expect("benchmark netlists are valid");
        let verdict = job.run();
        let report = Report::new(&netlist, job.spec(), &verdict);
        (
            report.canonical_json().to_string(),
            report.hash().to_string(),
        )
    };
    let default_cut = VerifyOptions::default().dense_cut;
    let (base_bytes, base_hash) = artifact(default_cut, SiftMode::Rescue, 1);
    for (dense_cut, sift, threads) in [
        (0, SiftMode::Rescue, 1),
        (default_cut, SiftMode::Auto, 1),
        (0, SiftMode::Off, 4),
        (default_cut, SiftMode::Auto, 4),
    ] {
        let (bytes, hash) = artifact(dense_cut, sift, threads);
        if bytes != base_bytes || hash != base_hash {
            eprintln!(
                "table1-smoke: artifact diverged at dense_cut={dense_cut} sift={sift} \
                 threads={threads} ({hash} vs {base_hash})"
            );
            failed = true;
        } else {
            println!(
                "table1-smoke: artifact stable at dense_cut={dense_cut} sift={sift} \
                 threads={threads}"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("table1-smoke: ok");
}

/// Value of a `--flag VALUE` pair, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let samples = flag_value(&args, "--samples")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(5)
        .max(1);

    if let Some(path) = flag_value(&args, "--perf-smoke") {
        let factor = flag_value(&args, "--factor")
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.5);
        perf_smoke(path, factor, samples);
        return;
    }

    if let Some(path) = flag_value(&args, "--table1-smoke") {
        let factor = flag_value(&args, "--factor")
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.1);
        table1_smoke(path, factor, samples);
        return;
    }

    let limit = flag_value(&args, "--limit")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
        .or(if full {
            Some(Duration::from_secs(900))
        } else {
            None
        });

    if let Some(path) = flag_value(&args, "--json") {
        let label = flag_value(&args, "--label").unwrap_or("current");
        json_mode(path, label, samples, full, limit);
        return;
    }

    let what = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find(|a| a.parse::<u64>().is_err())
        .cloned()
        .unwrap_or_else(|| "all".into());

    let benches = bench_set(full);
    let results = run_all_engines(&benches, limit);

    match what.as_str() {
        "table1" => table1(&results),
        "table2" => table2(&results),
        "table3" => table3(&benches, &results),
        "fig6" => fig6(&results),
        "fig7" => fig7(&results),
        "all" => {
            table1(&results);
            table2(&results);
            table3(&benches, &results);
            fig6(&results);
            fig7(&results);
        }
        other => {
            eprintln!("unknown report `{other}`; use table1|table2|table3|fig6|fig7|all");
            std::process::exit(2);
        }
    }
}
