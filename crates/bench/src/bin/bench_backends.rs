//! DD-backend A/B benchmark: private per-worker arenas vs the shared
//! concurrent store.
//!
//! ```text
//! bench_backends [--json BENCH_7.json] [--label NAME] [--samples N]
//!                [--max-overhead F]
//! ```
//!
//! Times the paper-configuration MAPI check of the perf-smoke gadgets
//! (dom-2 and keccak-1) at 1, 4 and 8 worker threads on both backends and
//! prints the per-row medians. With `--json` the medians are appended as a
//! labeled run to the given file, in the same label-replacing,
//! history-preserving layout as the `report --json` perf trajectory.
//!
//! The one-thread rows are the shared store's synchronization overhead —
//! no sharing can pay off with a single worker, so `shared/private` at one
//! thread is the price of the striped locks and seqlock caches. The run
//! exits non-zero if that overhead exceeds `--max-overhead` (default 1.10,
//! the ≤10% budget the shared backend is designed to).

use std::collections::BTreeMap;

use walshcheck_bench::{compare_backends, emit_json_pretty, round_secs, secs};
use walshcheck_core::json::{self, Json};
use walshcheck_gadgets::suite::Benchmark;

/// The gadgets measured: the CI perf-smoke pair — small enough for every
/// push, big enough that kernel-level overhead shows in the timing.
const GADGETS: [Benchmark; 2] = [Benchmark::Dom(2), Benchmark::Keccak(1)];

/// Worker-thread counts of the sweep.
const THREADS: [usize; 3] = [1, 4, 8];

/// Value of a `--flag VALUE` pair, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let samples = flag_value(&args, "--samples")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(5)
        .max(1);
    let max_overhead = flag_value(&args, "--max-overhead")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.10);

    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>10}",
        "gadget", "threads", "private_s", "shared_s", "shd/prv"
    );
    let mut gadget_rows = Vec::new();
    let mut failed = false;
    for bench in GADGETS {
        let mut rows = Vec::new();
        for threads in THREADS {
            eprintln!("measuring {bench} t{threads} ({samples} samples per backend) ...");
            let c = compare_backends(bench, threads, samples);
            println!(
                "{:<12} {:>8} {:>12.6} {:>12.6} {:>10.3}",
                c.gadget,
                c.threads,
                secs(c.private),
                secs(c.shared),
                c.overhead
            );
            if threads == 1 && c.overhead > max_overhead {
                eprintln!(
                    "bench_backends: {} single-thread shared overhead {:.3} \
                     exceeds the {max_overhead:.2} budget",
                    c.gadget, c.overhead
                );
                failed = true;
            }
            let mut row = BTreeMap::new();
            row.insert("threads".to_string(), Json::Int(threads as i64));
            row.insert(
                "private".to_string(),
                Json::Float(round_secs(secs(c.private))),
            );
            row.insert(
                "shared".to_string(),
                Json::Float(round_secs(secs(c.shared))),
            );
            row.insert("overhead".to_string(), Json::Float(round_secs(c.overhead)));
            rows.push(Json::Obj(row));
        }
        let mut entry = BTreeMap::new();
        entry.insert("gadget".to_string(), Json::Str(bench.name()));
        entry.insert("threads".to_string(), Json::Arr(rows));
        gadget_rows.push(Json::Obj(entry));
    }

    if let Some(path) = flag_value(&args, "--json") {
        let label = flag_value(&args, "--label").unwrap_or("current");
        let mut run = BTreeMap::new();
        run.insert("label".to_string(), Json::Str(label.to_string()));
        run.insert("samples".to_string(), Json::Int(samples as i64));
        run.insert("gadgets".to_string(), Json::Arr(gadget_rows));
        // Same merge discipline as the report --json trajectory: replace
        // the run with this label, keep the rest, append last.
        let mut runs: Vec<Json> = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| json::parse(&text).ok())
            .and_then(|doc| doc.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec))
            .unwrap_or_default();
        runs.retain(|r| r.get("label").and_then(Json::as_str) != Some(label));
        runs.push(Json::Obj(run));
        let mut doc = BTreeMap::new();
        doc.insert(
            "schema".to_string(),
            Json::Str("walshcheck-bench/backends-1".to_string()),
        );
        doc.insert("runs".to_string(), Json::Arr(runs));
        std::fs::write(path, emit_json_pretty(&Json::Obj(doc))).expect("perf file writable");
        eprintln!("recorded run `{label}` in {path}");
    }

    if failed {
        std::process::exit(1);
    }
}
