//! Head-to-head timing of the two parallel schedulers: the legacy static
//! modulo sharding vs the work-stealing batch queue behind `Session` —
//! plus a prefix-cache A/B mode.
//!
//! ```text
//! cargo run --release -p walshcheck-bench --bin sched_compare [threads] [samples] [gadget ...]
//! cargo run --release -p walshcheck-bench --bin sched_compare -- --cache-ab [threads] [samples] [gadget ...]
//! ```
//!
//! Defaults: 4 threads, 5 samples, `dom-2` and `keccak-1`. In scheduler
//! mode both runs check the paper property with the MAPI engine; in
//! `--cache-ab` mode the same check is timed with the prefix cache on and
//! off (see `cache_ab_property`). Verdict (and, for the cache mode,
//! witness) agreement is asserted inside the harness, so a row printing at
//! all means the two configurations agree. The cache mode exits nonzero if
//! the cached run is slower than the uncached one on `dom-2`, making it
//! usable as a CI smoke test against cache regressions.

use walshcheck_bench::{compare_cache_modes, compare_schedulers};
use walshcheck_gadgets::suite::Benchmark;

fn parse_gadget(name: &str) -> Option<Benchmark> {
    Benchmark::all().into_iter().find(|b| b.name() == name)
}

/// Parses `[threads] [samples] [gadget ...]` from the remaining arguments.
fn parse_common(args: impl Iterator<Item = String>) -> (usize, usize, Vec<Benchmark>) {
    let mut args = args.peekable();
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let samples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let gadgets: Vec<Benchmark> = if args.peek().is_none() {
        vec![Benchmark::Dom(2), Benchmark::Keccak(1)]
    } else {
        args.map(|n| parse_gadget(&n).unwrap_or_else(|| panic!("unknown gadget `{n}`")))
            .collect()
    };
    (threads, samples, gadgets)
}

fn scheduler_mode(args: impl Iterator<Item = String>) {
    let (threads, samples, gadgets) = parse_common(args);
    println!(
        "{:<12} {:>7} {:>12} {:>14} {:>8}",
        "gadget", "threads", "modulo", "work-stealing", "speedup"
    );
    for bench in gadgets {
        let c = compare_schedulers(bench, threads, samples);
        println!(
            "{:<12} {:>7} {:>12.4?} {:>14.4?} {:>7.2}x",
            c.gadget, c.threads, c.modulo, c.stealing, c.speedup
        );
    }
}

fn cache_ab_mode(args: impl Iterator<Item = String>) {
    let (threads, samples, gadgets) = parse_common(args);
    println!(
        "{:<12} {:>7} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "gadget", "threads", "cached", "uncached", "speedup", "hits", "misses"
    );
    let mut regressed = false;
    for bench in gadgets {
        let c = compare_cache_modes(bench, threads, samples);
        println!(
            "{:<12} {:>7} {:>12.4?} {:>12.4?} {:>7.2}x {:>10} {:>10}",
            c.gadget, c.threads, c.cached, c.uncached, c.speedup, c.hits, c.misses
        );
        if c.gadget == "dom-2" && c.speedup < 1.0 {
            eprintln!("cache regression: dom-2 is slower with the prefix cache enabled");
            regressed = true;
        }
    }
    if regressed {
        std::process::exit(1);
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("--cache-ab") {
        args.next();
        cache_ab_mode(args);
    } else {
        scheduler_mode(args);
    }
}
