//! Head-to-head timing of the two parallel schedulers: the legacy static
//! modulo sharding vs the work-stealing batch queue behind `Session`.
//!
//! ```text
//! cargo run --release -p walshcheck-bench --bin sched_compare [threads] [samples] [gadget ...]
//! ```
//!
//! Defaults: 4 threads, 5 samples, `dom_2` and `keccak_1`. Both runs check
//! the paper property with the MAPI engine; verdict agreement is asserted
//! inside the harness, so a row printing at all means the schedulers agree.

use walshcheck_bench::compare_schedulers;
use walshcheck_gadgets::suite::Benchmark;

fn parse_gadget(name: &str) -> Option<Benchmark> {
    Benchmark::all().into_iter().find(|b| b.name() == name)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let samples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let rest: Vec<String> = args.collect();
    let gadgets: Vec<Benchmark> = if rest.is_empty() {
        vec![Benchmark::Dom(2), Benchmark::Keccak(1)]
    } else {
        rest.iter()
            .map(|n| parse_gadget(n).unwrap_or_else(|| panic!("unknown gadget `{n}`")))
            .collect()
    };

    println!(
        "{:<12} {:>7} {:>12} {:>14} {:>8}",
        "gadget", "threads", "modulo", "work-stealing", "speedup"
    );
    for bench in gadgets {
        let c = compare_schedulers(bench, threads, samples);
        println!(
            "{:<12} {:>7} {:>12.4?} {:>14.4?} {:>7.2}x",
            c.gadget, c.threads, c.modulo, c.stealing, c.speedup
        );
    }
}
