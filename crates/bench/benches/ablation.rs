//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! row-wise vs joint checking, the functional-support prefilter, the
//! largest-first enumeration heuristic and the glitch-extended probe model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use walshcheck_circuit::glitch::ProbeModel;
use walshcheck_core::engine::VerifyOptions;
use walshcheck_core::property::{CheckMode, Property};
use walshcheck_core::session::Session;
use walshcheck_gadgets::suite::Benchmark;

fn bench_check_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mode");
    group.sample_size(10);
    let netlist = Benchmark::Dom(2).netlist();
    for mode in [CheckMode::RowWise, CheckMode::Joint] {
        group.bench_with_input(
            BenchmarkId::new(format!("{mode:?}"), "dom-2"),
            &netlist,
            |b, n| {
                b.iter(|| {
                    let opts = VerifyOptions::builder().mode(mode).build();
                    Session::new(n)
                        .expect("valid")
                        .options(opts)
                        .property(Property::Sni(2))
                        .run()
                        .secure
                })
            },
        );
    }
    group.finish();
}

fn bench_prefilter(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefilter");
    group.sample_size(10);
    let netlist = Benchmark::Dom(2).netlist();
    for prefilter in [false, true] {
        group.bench_with_input(
            BenchmarkId::new(if prefilter { "on" } else { "off" }, "dom-2"),
            &netlist,
            |b, n| {
                b.iter(|| {
                    Session::new(n)
                        .expect("valid")
                        .prefilter(prefilter)
                        .property(Property::Sni(2))
                        .run()
                        .secure
                })
            },
        );
    }
    group.finish();
}

fn bench_ordering_on_insecure_gadget(c: &mut Criterion) {
    // The paper's largest-first heuristic pays off when a violation exists:
    // compare both orders on a gadget that fails (x·R(x) composition).
    let mut group = c.benchmark_group("ordering");
    group.sample_size(10);
    let netlist = walshcheck_gadgets::composition::composition_fig1();
    for largest_first in [false, true] {
        group.bench_with_input(
            BenchmarkId::new(
                if largest_first {
                    "largest-first"
                } else {
                    "smallest-first"
                },
                "fig1",
            ),
            &netlist,
            |b, n| {
                b.iter(|| {
                    let v = Session::new(n)
                        .expect("valid")
                        .largest_first(largest_first)
                        .property(Property::Ni(2))
                        .run();
                    assert!(!v.secure);
                })
            },
        );
    }
    group.finish();
}

fn bench_probe_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe-model");
    group.sample_size(10);
    let netlist = Benchmark::Dom(1).netlist();
    for model in [ProbeModel::Standard, ProbeModel::Glitch] {
        group.bench_with_input(
            BenchmarkId::new(format!("{model:?}"), "dom-1"),
            &netlist,
            |b, n| {
                b.iter(|| {
                    Session::new(n)
                        .expect("valid")
                        .probe_model(model)
                        .property(Property::Sni(1))
                        .run()
                        .secure
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_check_modes,
    bench_prefilter,
    bench_ordering_on_insecure_gadget,
    bench_probe_models
);
criterion_main!(benches);
