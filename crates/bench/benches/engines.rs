//! Criterion benchmarks of the four verification engines on the paper's
//! gadget suite (Tables I/II, Figures 6/7 — statistically sampled variant).
//!
//! Only the fast benchmark subset is sampled here; the heavy gadgets
//! (dom-3/4, keccak-2/3) are measured once per run by the `report` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use walshcheck_bench::{paper_property, run_engine};
use walshcheck_core::engine::{EngineKind, VerifyOptions};
use walshcheck_core::session::Session;
use walshcheck_gadgets::suite::Benchmark;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("sni-verification");
    group.sample_size(10);
    for bench in Benchmark::fast() {
        let netlist = bench.netlist();
        let property = paper_property(bench);
        for engine in [
            EngineKind::Lil,
            EngineKind::Map,
            EngineKind::Mapi,
            EngineKind::Fujita,
        ] {
            group.bench_with_input(
                BenchmarkId::new(engine.to_string(), bench.name()),
                &netlist,
                |b, netlist| {
                    b.iter(|| {
                        // ti-1 is (correctly) not SNI; the bench measures
                        // the full verification either way.
                        let v = Session::new(netlist)
                            .expect("valid benchmark")
                            .options(VerifyOptions::paper(engine))
                            .property(property)
                            .run();
                        v.stats.combinations
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_one_shot_consistency(c: &mut Criterion) {
    // Smoke-level: the harness helper used by the report binary.
    c.bench_function("harness/run_engine dom-1 MAPI", |b| {
        b.iter(|| {
            let r = run_engine(Benchmark::Dom(1), EngineKind::Mapi);
            assert!(r.secure);
            r.combinations
        })
    });
}

criterion_group!(benches, bench_engines, bench_one_shot_consistency);
criterion_main!(benches);
