//! Micro-benchmarks of the decision-diagram and spectral primitives: the
//! Fujita ADD Walsh transform vs the sparse map transform, convolution
//! containers (hash map vs sorted list), and circuit unfolding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use walshcheck_circuit::unfold::unfold;
use walshcheck_core::spectrum::{LilSpectrum, MapSpectrum, Spectrum};
use walshcheck_dd::add::AddManager;
use walshcheck_dd::spectral::{sign_add, walsh_sparse, wht, SparseWalshCache};
use walshcheck_gadgets::suite::Benchmark;

fn bench_walsh_transforms(c: &mut Criterion) {
    let netlist = Benchmark::Dom(2).netlist();
    let unfolded = unfold(&netlist).expect("acyclic");
    let outputs: Vec<_> = netlist
        .outputs
        .iter()
        .map(|&(w, _)| unfolded.wire_fn(w))
        .collect();

    let mut group = c.benchmark_group("walsh-transform");
    group.bench_function("sparse(dom-2 outputs)", |b| {
        b.iter(|| {
            let mut cache = SparseWalshCache::new();
            outputs
                .iter()
                .map(|&f| walsh_sparse(&unfolded.bdds, f, &mut cache).len())
                .sum::<usize>()
        })
    });
    group.bench_function("fujita-add(dom-2 outputs)", |b| {
        b.iter(|| {
            let mut adds = AddManager::new(unfolded.bdds.num_vars());
            outputs
                .iter()
                .map(|&f| {
                    let s = sign_add(&unfolded.bdds, &mut adds, f);
                    let w = wht(&mut adds, s);
                    adds.node_count(w)
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_convolution_containers(c: &mut Criterion) {
    let netlist = Benchmark::Dom(3).netlist();
    let unfolded = unfold(&netlist).expect("acyclic");
    let mut cache = SparseWalshCache::new();
    let spectra: Vec<_> = netlist
        .outputs
        .iter()
        .map(|&(w, _)| walsh_sparse(&unfolded.bdds, unfolded.wire_fn(w), &mut cache))
        .collect();
    let maps: Vec<MapSpectrum> = spectra.iter().map(|s| MapSpectrum::from_map(s)).collect();
    let lils: Vec<LilSpectrum> = spectra.iter().map(|s| LilSpectrum::from_map(s)).collect();

    let mut group = c.benchmark_group("convolution");
    group.bench_with_input(
        BenchmarkId::new("map", "dom-3 outputs"),
        &maps,
        |b, maps| {
            b.iter(|| {
                let mut acc = MapSpectrum::one();
                for m in maps {
                    acc = acc.convolve(m);
                }
                acc.len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("lil", "dom-3 outputs"),
        &lils,
        |b, lils| {
            b.iter(|| {
                let mut acc = LilSpectrum::one();
                for l in lils {
                    acc = acc.convolve(l);
                }
                acc.len()
            })
        },
    );
    group.finish();
}

fn bench_unfolding(c: &mut Criterion) {
    let mut group = c.benchmark_group("unfold");
    for bench in [Benchmark::Dom(2), Benchmark::Keccak(1)] {
        let netlist = bench.netlist();
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &netlist,
            |b, n| b.iter(|| unfold(n).expect("acyclic").bdds.arena_size()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_walsh_transforms,
    bench_convolution_containers,
    bench_unfolding
);
criterion_main!(benches);
