//! Every ILANG file in `corpus/` must parse, validate, simulate and verify.

use walshcheck::prelude::*;

fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory present")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "il"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus must contain .il files");
    files
}

#[test]
fn corpus_parses_and_validates() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("readable");
        let n = parse_ilang(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        n.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(n.num_secrets() > 0, "{}", path.display());
    }
}

#[test]
fn corpus_round_trips() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("readable");
        let n = parse_ilang(&text).expect("parses");
        let re = parse_ilang(&write_ilang(&n)).expect("re-parses");
        assert_eq!(re.num_secrets(), n.num_secrets(), "{}", path.display());
        assert_eq!(re.randoms().len(), n.randoms().len(), "{}", path.display());
    }
}

#[test]
fn corpus_gadgets_verify_at_their_order() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("readable");
        let n = parse_ilang(&text).expect("parses");
        let shares = n.shares_of(walshcheck::circuit::SecretId(0)).len() as u32;
        let d = shares.saturating_sub(1).max(1);
        // Probing security at the design order holds for every shipped file.
        let v = Session::new(&n)
            .expect("valid")
            .property(Property::Probing(d))
            .run();
        assert!(v.secure, "{}: {v}", path.display());
    }
}
