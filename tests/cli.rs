//! End-to-end tests of the `walshcheck` command-line binary.

use std::process::Command;

fn walshcheck(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_walshcheck"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn list_names_all_benchmarks() {
    let (stdout, _, code) = walshcheck(&["list"]);
    assert_eq!(code, Some(0));
    for name in ["ti-1", "trichina-1", "isw-1", "dom-4", "keccak-3"] {
        assert!(stdout.contains(&format!("bench:{name}")), "missing {name}");
    }
}

#[test]
fn check_secure_gadget_exits_zero() {
    let (stdout, _, code) = walshcheck(&["check", "bench:dom-1", "--property", "sni"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("1-SNI: secure"), "{stdout}");
}

#[test]
fn check_insecure_gadget_exits_nonzero_with_witness() {
    let (stdout, _, code) =
        walshcheck(&["check", "bench:ti-1", "--property", "sni", "--order", "1"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("VIOLATED"), "{stdout}");
    assert!(stdout.contains("witness probes"), "{stdout}");
}

#[test]
fn check_engine_and_mode_flags() {
    for engine in ["lil", "map", "mapi", "fujita"] {
        for mode in ["rowwise", "joint"] {
            let (stdout, _, code) = walshcheck(&[
                "check",
                "bench:isw-1",
                "--engine",
                engine,
                "--mode",
                mode,
                "--threads",
                "2",
            ]);
            assert_eq!(code, Some(0), "{engine}/{mode}: {stdout}");
        }
    }
}

#[test]
fn profile_prints_property_matrix() {
    let (stdout, _, code) = walshcheck(&["profile", "bench:trichina-1"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("probing"), "{stdout}");
    assert!(stdout.contains("PINI"), "{stdout}");
}

#[test]
fn dump_then_check_round_trips_through_a_file() {
    let (il, _, code) = walshcheck(&["dump", "bench:dom-1"]);
    assert_eq!(code, Some(0));
    assert!(il.contains("module"), "{il}");
    let dir = std::env::temp_dir().join("walshcheck-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("dom1.il");
    std::fs::write(&path, &il).expect("write");
    let (stdout, _, code) = walshcheck(&["check", path.to_str().expect("utf-8 path")]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("secure"), "{stdout}");
}

#[test]
fn info_reports_ports_and_stats() {
    let (stdout, _, code) = walshcheck(&["info", "bench:dom-2"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("3 shares"), "{stdout}");
    assert!(stdout.contains("non-linear"), "{stdout}");
}

#[test]
fn errors_are_reported_cleanly() {
    // Usage and I/O errors exit 3, distinct from the verdict codes 0/1/2.
    let (_, stderr, code) = walshcheck(&["check", "bench:nonesuch"]);
    assert_eq!(code, Some(3));
    assert!(stderr.contains("unknown benchmark"), "{stderr}");
    let (_, stderr, code) = walshcheck(&["check", "bench:dom-1", "--engine", "warp"]);
    assert_eq!(code, Some(3));
    assert!(stderr.contains("unknown engine"), "{stderr}");
    let (_, _, code) = walshcheck(&["frobnicate"]);
    assert_eq!(code, Some(3));
}

#[test]
fn inconclusive_run_exits_two() {
    // A tiny node budget quarantines combinations: no witness, but no proof
    // either — the exit code must be 2, never 0.
    let (stdout, _, code) = walshcheck(&[
        "check",
        "bench:dom-2",
        "--property",
        "sni",
        "--node-budget",
        "1",
    ]);
    assert_eq!(code, Some(2), "{stdout}");
    assert!(stdout.contains("INCONCLUSIVE"), "{stdout}");
    assert!(stdout.contains("quarantined"), "{stdout}");
}

#[test]
fn inconclusive_json_report_carries_degradation() {
    let (stdout, _, code) = walshcheck(&[
        "check",
        "bench:dom-2",
        "--property",
        "sni",
        "--node-budget",
        "1",
        "--json",
    ]);
    assert_eq!(code, Some(2), "{stdout}");
    for fragment in [
        "\"outcome\":\"inconclusive\"",
        "\"degradation\":{\"reason\":\"node-budget\"",
        "\"skipped_count\":",
        "\"resumed\":false",
        // Compat: `secure` stays, but it is not a proof on its own.
        "\"secure\":true",
    ] {
        assert!(
            stdout.contains(fragment),
            "missing {fragment} in:\n{stdout}"
        );
    }
}

#[test]
fn checkpoint_resume_round_trips_via_cli() {
    let dir = std::env::temp_dir().join("walshcheck-cli-ckpt");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let ck = dir.join("dom2.ck");
    let _ = std::fs::remove_file(&ck);
    let ck_str = ck.to_str().expect("utf-8 path");
    // A full run leaves a complete-frontier checkpoint…
    let (stdout, _, code) = walshcheck(&[
        "check",
        "bench:dom-2",
        "--property",
        "sni",
        "--json",
        "--checkpoint",
        ck_str,
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    let text = std::fs::read_to_string(&ck).expect("checkpoint written");
    assert!(
        text.contains("\"schema\":\"walshcheck-checkpoint/1\""),
        "{text}"
    );
    // …and resuming from it reproduces the verdict without re-sweeping.
    let (resumed, _, code) = walshcheck(&[
        "check",
        "bench:dom-2",
        "--property",
        "sni",
        "--json",
        "--resume",
        ck_str,
    ]);
    assert_eq!(code, Some(0), "{resumed}");
    assert!(resumed.contains("\"outcome\":\"secure\""), "{resumed}");
    assert!(resumed.contains("\"resumed\":true"), "{resumed}");
    // Resuming against a different circuit is rejected up front.
    let (_, stderr, code) = walshcheck(&[
        "check",
        "bench:dom-1",
        "--property",
        "sni",
        "--resume",
        ck_str,
    ]);
    assert_eq!(code, Some(3), "{stderr}");
    assert!(stderr.contains("fingerprint mismatch"), "{stderr}");
}

#[test]
fn rescue_flag_upgrades_a_starved_run() {
    // Without rescue the tiny budget is inconclusive (exit 2, pinned
    // above); with it every quarantine is re-verified and the run proves
    // security — exit 0 with a recovery summary.
    let (stdout, _, code) = walshcheck(&[
        "check",
        "bench:dom-2",
        "--property",
        "sni",
        "--node-budget",
        "1",
        "--rescue",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("secure"), "{stdout}");
    assert!(stdout.contains("rescue pass:"), "{stdout}");
    assert!(stdout.contains("0 unresolved"), "{stdout}");

    let (json, _, code) = walshcheck(&[
        "check",
        "bench:dom-2",
        "--property",
        "sni",
        "--node-budget",
        "1",
        "--rescue",
        "--json",
    ]);
    assert_eq!(code, Some(0), "{json}");
    for fragment in [
        "\"outcome\":\"secure\"",
        "\"recovery\":{\"attempted\":",
        "\"unresolved\":0",
        "\"rung\":\"budget\"",
        "\"resolution\":\"clean\"",
    ] {
        assert!(json.contains(fragment), "missing {fragment} in:\n{json}");
    }

    // `--no-rescue` restores the conservative behavior.
    let (stdout, _, code) = walshcheck(&[
        "check",
        "bench:dom-2",
        "--property",
        "sni",
        "--node-budget",
        "1",
        "--rescue",
        "--no-rescue",
    ]);
    assert_eq!(code, Some(2), "{stdout}");
    assert!(stdout.contains("INCONCLUSIVE"), "{stdout}");
}

#[test]
fn json_report_for_secure_gadget() {
    let (stdout, _, code) = walshcheck(&["check", "bench:dom-1", "--property", "sni", "--json"]);
    assert_eq!(code, Some(0), "{stdout}");
    for fragment in [
        "\"schema\":\"walshcheck-report/5\"",
        "\"recovery\":null",
        "\"netlist\":\"dom-1\"",
        "\"netlist_sha256\":\"",
        "\"report_hash\":\"",
        "\"cache\":{\"enabled\":true,",
        "\"secure\":true",
        "\"outcome\":\"secure\"",
        "\"degradation\":{\"reason\":null,",
        "\"witness\":null",
        "\"combinations\":",
        "\"cache_hits\":",
        "\"phases\":{",
        "\"enumerate\":",
    ] {
        assert!(
            stdout.contains(fragment),
            "missing {fragment} in:\n{stdout}"
        );
    }
    // Machine-readable output must be the only thing on stdout.
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.trim_end().ends_with('}'), "{stdout}");
}

#[test]
fn json_report_for_insecure_gadget_carries_the_witness() {
    let (stdout, _, code) = walshcheck(&["check", "bench:ti-1", "--property", "sni", "--json"]);
    assert_eq!(code, Some(1), "{stdout}");
    for fragment in [
        "\"secure\":false",
        "\"witness\":{",
        "\"probes\":",
        "\"reason\":",
    ] {
        assert!(
            stdout.contains(fragment),
            "missing {fragment} in:\n{stdout}"
        );
    }
}

#[test]
fn no_cache_flag_disables_caching_without_changing_the_verdict() {
    let cached = walshcheck(&["check", "bench:dom-2", "--property", "sni", "--json"]);
    let uncached = walshcheck(&[
        "check",
        "bench:dom-2",
        "--property",
        "sni",
        "--json",
        "--no-cache",
    ]);
    assert_eq!(cached.2, Some(0), "{}", cached.0);
    assert_eq!(uncached.2, Some(0), "{}", uncached.0);
    assert!(
        cached.0.contains("\"cache\":{\"enabled\":true,"),
        "{}",
        cached.0
    );
    assert!(
        uncached.0.contains("\"cache\":{\"enabled\":false,"),
        "{}",
        uncached.0
    );
    // Caching is a pure time/memory trade: same verdict either way, and
    // the disabled run reports all-zero counters.
    assert!(uncached
        .0
        .contains("\"hits\":0,\"misses\":0,\"evictions\":0,\"peak_bytes\":0"));
    assert!(cached.0.contains("\"secure\":true"));
    assert!(uncached.0.contains("\"secure\":true"));
}

#[test]
fn json_report_respects_threads_and_engine() {
    let (stdout, _, code) = walshcheck(&[
        "check",
        "bench:dom-1",
        "--property",
        "sni",
        "--json",
        "--threads",
        "3",
        "--engine",
        "lil",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"threads\":3"), "{stdout}");
    assert!(stdout.contains("\"engine\":\"lil\""), "{stdout}");
}

#[test]
fn progress_flag_reports_on_stderr_only() {
    let (stdout, stderr, code) =
        walshcheck(&["check", "bench:dom-1", "--property", "sni", "--progress"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stderr.contains("progress:"), "{stderr}");
    assert!(stderr.contains("combinations"), "{stderr}");
    // The human verdict stays on stdout, uncontaminated by the ticker.
    assert!(stdout.contains("secure"), "{stdout}");
    assert!(!stdout.contains("progress:"), "{stdout}");
}

#[test]
fn glitch_flag_changes_verdicts() {
    // Combinational ISW is 1-SNI in the standard model but not under
    // glitch-extended probes.
    let (stdout, _, code) = walshcheck(&["check", "bench:isw-1", "--property", "sni"]);
    assert_eq!(code, Some(0), "{stdout}");
    let (stdout, _, code) = walshcheck(&["check", "bench:isw-1", "--property", "sni", "--glitch"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("VIOLATED"), "{stdout}");
}
