//! The highest-value property test of the repository: on *random* masked
//! circuits, every spectral engine (in both checking modes) must return
//! exactly the verdict of the exhaustive distribution oracle, for every
//! property and both probe models.

use proptest::prelude::*;

use walshcheck::prelude::*;
use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_core::exhaustive::exhaustive_check;
use walshcheck_core::sites::SiteOptions;

#[derive(Debug, Clone)]
struct GateRecipe {
    kind: u8,
    a: usize,
    b: usize,
}

fn recipe_strategy() -> impl Strategy<Value = (Vec<GateRecipe>, u8, u8)> {
    (
        proptest::collection::vec(
            (0u8..8, any::<usize>(), any::<usize>()).prop_map(|(kind, a, b)| GateRecipe {
                kind,
                a,
                b,
            }),
            1..14,
        ),
        2u8..4, // shares of the secret
        0u8..3, // random bits
    )
}

/// A random masked circuit over one secret with `shares` shares and `rand`
/// fresh randoms; the last two wires become the output shares.
fn build(recipes: &[GateRecipe], shares: u8, rands: u8) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let s = b.secret("x");
    let mut wires = b.shares(s, shares as u32);
    for i in 0..rands {
        wires.push(b.random(format!("r{i}")));
    }
    for g in recipes {
        let a = wires[g.a % wires.len()];
        let bb = wires[g.b % wires.len()];
        let out = match g.kind {
            0 => b.and(a, bb),
            1 => b.or(a, bb),
            2 | 3 => b.xor(a, bb),
            4 => b.xnor(a, bb),
            5 => b.not(a),
            6 => b.reg(a),
            _ => b.nand(a, bb),
        };
        wires.push(out);
    }
    let o = b.output("q");
    let q0 = wires[wires.len() - 1];
    b.output_share(q0, o, 0);
    if wires.len() >= 2 {
        let q1 = wires[wires.len() - 2];
        if q1 != q0 {
            b.output_share(q1, o, 1);
        }
    }
    b.build().expect("builder output is structurally valid")
}

proptest! {
    // Each case runs 4 engines × 2 modes × properties × oracle: keep the
    // case count moderate; the circuits are tiny so each case is fast.
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engines_equal_oracle_on_random_circuits((recipes, shares, rands) in recipe_strategy()) {
        let netlist = build(&recipes, shares, rands);
        let d = 2u32.min(shares as u32 - 1).max(1);
        for model in [ProbeModel::Standard, ProbeModel::Glitch] {
            let sites = SiteOptions { probe_model: model, ..SiteOptions::default() };
            for prop in [
                Property::Probing(d),
                Property::Ni(d),
                Property::Sni(d),
                Property::Pini(d),
            ] {
                let oracle = exhaustive_check(&netlist, prop, &sites)
                    .expect("tiny circuit")
                    .secure;
                for engine in
                    [EngineKind::Lil, EngineKind::Map, EngineKind::Mapi, EngineKind::Fujita]
                {
                    for mode in [CheckMode::Joint, CheckMode::RowWise] {
                        let mut opts = VerifyOptions::builder().engine(engine).mode(mode).build();
                        opts.sites = sites;
                        let got = Session::new(&netlist)
                            .expect("valid netlist")
                            .options(opts)
                            .property(prop)
                            .run()
                            .secure;
                        prop_assert_eq!(
                            got,
                            oracle,
                            "{:?} {} {:?} {:?} disagrees with oracle on {:?} shares={} rands={}",
                            prop, engine, mode, model, recipes, shares, rands
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prefilter_never_changes_random_verdicts((recipes, shares, rands) in recipe_strategy()) {
        let netlist = build(&recipes, shares, rands);
        let d = shares as u32 - 1;
        for prop in [Property::Probing(d), Property::Sni(d)] {
            let base = Session::new(&netlist)
                .expect("valid")
                .prefilter(false)
                .property(prop)
                .run()
                .secure;
            let filtered = Session::new(&netlist)
                .expect("valid")
                .prefilter(true)
                .property(prop)
                .run()
                .secure;
            prop_assert_eq!(base, filtered, "{:?}", prop);
        }
    }
}
