//! Ground-truth verdicts for the benchmark gadgets.
//!
//! Every assertion here is a published fact about the gadget (or follows
//! from its definition) and is independently confirmed by the exhaustive
//! distribution oracle in `engines_vs_oracle.rs`.

use walshcheck::prelude::*;
use walshcheck_gadgets::composition::{
    composition_fig1, composition_fixed, composition_independent,
};
use walshcheck_gadgets::isw::{isw_and, isw_and_broken};
use walshcheck_gadgets::refresh::{refresh_circular, refresh_isw, refresh_paper};

fn check(n: &walshcheck::circuit::netlist::Netlist, p: Property) -> bool {
    Session::new(n)
        .expect("valid netlist")
        .property(p)
        .run()
        .secure
}

#[test]
fn isw_is_sni_at_its_order() {
    for d in 1..=2 {
        let n = isw_and(d);
        assert!(check(&n, Property::Sni(d)), "isw-{d} must be {d}-SNI");
        assert!(check(&n, Property::Ni(d)));
        assert!(check(&n, Property::Probing(d)));
    }
}

#[test]
fn isw_fails_beyond_its_order() {
    let n = isw_and(1);
    // Probing both input shares of a secret breaks order 2.
    assert!(!check(&n, Property::Probing(2)));
    assert!(!check(&n, Property::Sni(2)));
}

#[test]
fn broken_isw_is_detected() {
    let n = isw_and_broken(2);
    assert!(!check(&n, Property::Sni(2)), "shared randomness must leak");
}

#[test]
fn dom_is_sni_at_orders_1_and_2() {
    for d in 1..=2 {
        let n = Benchmark::Dom(d).netlist();
        assert!(check(&n, Property::Sni(d)), "dom-{d} must be {d}-SNI");
        assert!(check(&n, Property::Probing(d)));
    }
}

#[test]
fn trichina_is_1_sni() {
    let n = Benchmark::Trichina1.netlist();
    assert!(check(&n, Property::Sni(1)));
    assert!(check(&n, Property::Ni(1)));
    assert!(check(&n, Property::Probing(1)));
}

#[test]
fn ti_is_probing_secure_but_not_ni() {
    // The 3-share TI AND has no fresh randomness: it is 1-probing secure
    // (non-completeness) but its output shares depend on two input shares,
    // so it is neither 1-NI nor 1-SNI.
    let n = Benchmark::Ti1.netlist();
    assert!(check(&n, Property::Probing(1)));
    assert!(!check(&n, Property::Ni(1)));
    assert!(!check(&n, Property::Sni(1)));
}

#[test]
fn keccak1_is_1_sni() {
    let n = Benchmark::Keccak(1).netlist();
    assert!(check(&n, Property::Sni(1)));
    assert!(check(&n, Property::Probing(1)));
}

#[test]
fn refresh_gadgets() {
    // The paper's Fig. 1 refresh is NI but not SNI at order 2 (its whole
    // point): probing p_f = a0⊕r0 plus observing output o1 = a1⊕r0 gives
    // a0⊕a1 — two observations, one internal probe, two shares > budget 1.
    let n = refresh_paper();
    assert!(check(&n, Property::Ni(2)));
    assert!(!check(&n, Property::Sni(2)));
    // The circular refresh at order 1 is SNI (any single observation is
    // masked); the ISW refresh is SNI at its order.
    assert!(check(&refresh_circular(1), Property::Sni(1)));
    for d in 1..=2 {
        assert!(check(&refresh_isw(d), Property::Sni(d)), "refresh-isw-{d}");
    }
}

#[test]
fn fig1_composition_is_not_2ni_and_fix_restores_it() {
    // The paper's Fig. 1/2 example: multiplying a non-SNI-refreshed sharing
    // with the same secret is not 2-NI ("two probed values give three
    // shares"); an SNI refresh restores composability, and an independent
    // second operand avoids the flaw altogether.
    assert!(!check(&composition_fig1(), Property::Ni(2)));
    assert!(check(&composition_fixed(), Property::Ni(2)));
    assert!(check(&composition_independent(), Property::Ni(2)));
}

#[test]
fn fig1_witness_mentions_three_shares() {
    let v = Session::new(&composition_fig1())
        .expect("valid")
        .property(Property::Ni(2))
        .run();
    assert!(!v.secure);
    let w = v.witness.expect("witness present");
    assert_eq!(w.combination.len(), 2, "two probed values");
    assert!(w.reason.contains("3 shares"), "reason: {}", w.reason);
}

#[test]
fn pini_verdicts() {
    // Refresh gadgets keep share indices separated: the ISW refresh is
    // 1-PINI. The ISW multiplication is famously NOT PINI (cross-domain
    // products mix indices).
    assert!(check(&refresh_isw(1), Property::Pini(1)));
    assert!(!check(&isw_and(1), Property::Pini(1)));
}

#[test]
fn verdict_stats_are_populated() {
    let v = Session::new(&Benchmark::Dom(1).netlist())
        .expect("valid")
        .property(Property::Sni(1))
        .run();
    assert!(v.secure);
    assert!(v.stats.combinations > 0);
    assert!(v.stats.total_time.as_nanos() > 0);
}

#[test]
fn parallel_check_agrees_with_serial() {
    for (n, prop) in [
        (Benchmark::Dom(2).netlist(), Property::Sni(2)),
        (composition_fig1(), Property::Ni(2)),
        (isw_and_broken(2), Property::Sni(2)),
    ] {
        let serial = Session::new(&n).expect("valid").property(prop).run();
        for threads in [1, 2, 4] {
            let par = Session::new(&n)
                .expect("valid")
                .property(prop)
                .threads(threads)
                .run();
            assert_eq!(par.secure, serial.secure, "{prop:?} with {threads} threads");
            assert!(!par.stats.timed_out);
            if !par.secure {
                assert!(par.witness.is_some());
            }
        }
    }
}

#[test]
fn time_limit_reports_partial_runs() {
    let n = Benchmark::Dom(2).netlist();
    let v = Session::new(&n)
        .expect("valid")
        .time_limit(std::time::Duration::ZERO)
        .property(Property::Sni(2))
        .run();
    assert!(v.stats.timed_out, "zero budget must time out");
    // A generous budget completes normally.
    let v = Session::new(&n)
        .expect("valid")
        .time_limit(std::time::Duration::from_secs(3600))
        .property(Property::Sni(2))
        .run();
    assert!(!v.stats.timed_out);
    assert!(v.secure);
}

#[test]
fn hpc_gadgets_are_pini_and_isw_dom_are_not() {
    use walshcheck_gadgets::hpc::{hpc1_and, hpc2_and};
    // HPC2 is d-PINI (also under glitches); HPC1 is d-PINI.
    for d in 1..=2 {
        assert!(
            check(&hpc2_and(d), Property::Pini(d)),
            "hpc2-{d} must be {d}-PINI"
        );
        assert!(
            check(&hpc1_and(d), Property::Pini(d)),
            "hpc1-{d} must be {d}-PINI"
        );
        assert!(check(&hpc2_and(d), Property::Probing(d)));
    }
    let v = Session::new(&hpc2_and(1))
        .expect("valid")
        .probe_model(ProbeModel::Glitch)
        .property(Property::Pini(1))
        .run();
    assert!(v.secure, "hpc2-1 must be glitch-robust 1-PINI: {v}");
    // DOM multiplication mixes share indices across domains: not PINI.
    assert!(!check(&Benchmark::Dom(1).netlist(), Property::Pini(1)));
}

#[test]
fn hpc2_pini_matches_oracle_at_order_1() {
    use walshcheck_core::exhaustive::exhaustive_check;
    use walshcheck_core::sites::SiteOptions;
    use walshcheck_gadgets::hpc::hpc2_and;
    let n = hpc2_and(1);
    for prop in [
        Property::Pini(1),
        Property::Sni(1),
        Property::Ni(1),
        Property::Probing(1),
    ] {
        let oracle = exhaustive_check(&n, prop, &SiteOptions::default()).expect("small");
        let got = Session::new(&n).expect("valid").property(prop).run();
        assert_eq!(got.secure, oracle.secure, "{prop:?}");
    }
}

#[test]
fn uniformity_of_benchmark_sharings() {
    use walshcheck_core::uniformity::{is_uniform_sharing, unbalanced_output_combination};
    // Trichina's output sharing (c0, z) is uniform; DOM-1's resharing makes
    // its output uniform too. The 3-share TI AND is the classic
    // counterexample: no uniform 3-share sharing of AND exists without
    // fresh randomness.
    assert!(is_uniform_sharing(&Benchmark::Trichina1.netlist()).expect("small"));
    assert!(is_uniform_sharing(&Benchmark::Dom(1).netlist()).expect("small"));
    assert!(!is_uniform_sharing(&Benchmark::Ti1.netlist()).expect("small"));
    // The spectral necessary condition already flags TI: its first output
    // share c0 = a1(b1⊕b2) ⊕ a2b1 is biased (W(∅) = 1/4), while the
    // uniform gadgets pass it.
    assert!(unbalanced_output_combination(&Benchmark::Ti1.netlist())
        .expect("small")
        .is_some());
    assert_eq!(
        unbalanced_output_combination(&Benchmark::Trichina1.netlist()).expect("small"),
        None
    );
    assert_eq!(
        unbalanced_output_combination(&Benchmark::Dom(1).netlist()).expect("small"),
        None
    );
}

#[test]
fn pini_composition_without_refresh_is_secure() {
    use walshcheck_circuit::compose::{chain, Binding};
    use walshcheck_circuit::netlist::{OutputId, SecretId};
    use walshcheck_gadgets::hpc::hpc2_and;
    let h = chain(
        &hpc2_and(1),
        &hpc2_and(1),
        &[Binding {
            inner_output: OutputId(0),
            outer_secret: SecretId(0),
        }],
    )
    .expect("composes");
    assert!(check(&h, Property::Pini(1)), "PINI ∘ PINI must be PINI");
    assert!(check(&h, Property::Probing(1)));
}

#[test]
fn chi3_ti_is_glitch_robust_first_order_but_not_sni() {
    use walshcheck_core::exhaustive::exhaustive_check;
    use walshcheck_core::sites::SiteOptions;
    use walshcheck_gadgets::chi3::chi3_ti;
    let n = chi3_ti();
    let v = Session::new(&n)
        .expect("valid")
        .probe_model(ProbeModel::Glitch)
        .property(Property::Probing(1))
        .run();
    assert!(v.secure, "TI χ3 must be glitch-robust first order: {v}");
    assert!(!check(&n, Property::Sni(1)));
    // Oracle agreement (9 inputs: trivially enumerable).
    for prop in [Property::Probing(1), Property::Ni(1), Property::Sni(1)] {
        let o = exhaustive_check(&n, prop, &SiteOptions::default()).expect("small");
        assert_eq!(check(&n, prop), o.secure, "{prop:?}");
    }
}

#[test]
fn witness_minimization_shrinks_combinations() {
    // Check the broken ISW at order 3: the largest-first search reports a
    // size-3 witness even though 2 probes suffice.
    let n = isw_and_broken(2);
    let opts = VerifyOptions::default();
    let mut session = Session::new(&n).expect("valid").property(Property::Sni(3));
    let v = session.run();
    assert!(!v.secure);
    let w = v.witness.expect("witness");
    let min = session
        .verifier_mut()
        .minimize_witness(&w, Property::Sni(3), &opts);
    assert!(min.combination.len() <= w.combination.len());
    assert!(!min.combination.is_empty());
    // The minimized combination still violates on its own.
    assert!(session
        .verifier_mut()
        .check_specific(&min.combination, Property::Sni(3), &opts)
        .is_some());
}

#[test]
fn session_is_reusable_across_checks() {
    let n = Benchmark::Dom(1).netlist();
    let mut s = Session::new(&n).expect("valid").property(Property::Sni(1));
    // Interleave properties and engines on one session instance; results
    // must be stable across repetitions (cache clearing between runs).
    for _ in 0..3 {
        s = s.engine(EngineKind::Mapi).property(Property::Sni(1));
        assert!(s.run().secure);
        s = s.property(Property::Probing(2));
        assert!(!s.run().secure);
        s = s.engine(EngineKind::Fujita).property(Property::Ni(1));
        assert!(s.run().secure);
    }
}

#[test]
fn find_witnesses_enumerates_multiple_leaks() {
    use walshcheck_core::engine::Verifier;
    let n = isw_and_broken(2);
    let mut v = Verifier::new(&n).expect("valid");
    let witnesses = v.find_witnesses(Property::Sni(2), &VerifyOptions::default(), 5);
    assert!(
        witnesses.len() >= 2,
        "broken masking must leak in many places"
    );
    assert!(witnesses.len() <= 5);
    // All reported combinations are genuine violations.
    for w in &witnesses {
        assert!(v
            .check_specific(&w.combination, Property::Sni(2), &VerifyOptions::default())
            .is_some());
    }
    // A secure gadget yields none.
    let secure = Benchmark::Dom(1).netlist();
    let mut v = Verifier::new(&secure).expect("valid");
    assert!(v
        .find_witnesses(Property::Sni(1), &VerifyOptions::default(), 5)
        .is_empty());
}

#[test]
fn exhaustive_probing_witness_reports_statistical_distance() {
    use walshcheck_core::exhaustive::exhaustive_check;
    use walshcheck_core::sites::SiteOptions;
    let n = isw_and(1);
    let v = exhaustive_check(&n, Property::Probing(2), &SiteOptions::default()).expect("small");
    assert!(!v.secure);
    let w = v.witness.expect("witness");
    assert!(
        w.reason.contains("statistical distance"),
        "reason should quantify the leak: {}",
        w.reason
    );
    // Probing two shares of a secret reveals it completely: distance 1.
    assert!(w.reason.contains("1.0000"), "{}", w.reason);
}
