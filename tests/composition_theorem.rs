//! The composition theorems, exercised mechanically with the structural
//! `chain` combinator: SNI ∘ SNI and SNI-after-NI compose, the Fig. 1
//! pattern shows why the *inner* gadget must be SNI.

use walshcheck::prelude::*;
use walshcheck_circuit::compose::{chain, Binding};
use walshcheck_circuit::netlist::{OutputId, SecretId};
use walshcheck_gadgets::isw::isw_and;
use walshcheck_gadgets::refresh::{refresh_isw, refresh_paper};

fn check(n: &Netlist, p: Property) -> bool {
    Session::new(n).expect("valid").property(p).run().secure
}

#[test]
fn sni_refresh_into_sni_multiplier_is_sni() {
    // f = ISW refresh (2-SNI), g = ISW multiplication (2-SNI):
    // the composition theorem gives 2-SNI for g ∘ f.
    let f = refresh_isw(2);
    let g = isw_and(2);
    let h = chain(
        &f,
        &g,
        &[Binding {
            inner_output: OutputId(0),
            outer_secret: SecretId(0),
        }],
    )
    .expect("composes");
    assert_eq!(h.num_secrets(), 2); // f's secret + g's unbound operand
    assert!(check(&h, Property::Sni(2)), "SNI ∘ SNI must be SNI");
    assert!(check(&h, Property::Probing(2)));
}

#[test]
fn ni_refresh_into_sni_multiplier_is_ni() {
    // f = the paper's Fig. 1 refresh (2-NI only), g = ISW (2-SNI), with an
    // *independent* second operand: d-SNI ∘ d-NI gives d-NI.
    let f = refresh_paper();
    let g = isw_and(2);
    let h = chain(
        &f,
        &g,
        &[Binding {
            inner_output: OutputId(0),
            outer_secret: SecretId(0),
        }],
    )
    .expect("composes");
    assert!(check(&h, Property::Ni(2)), "SNI ∘ NI must be NI");
}

#[test]
fn chained_composition_matches_the_handwritten_one() {
    // chain(refresh_paper, isw_2) computes the same function as the
    // hand-written composition_independent and gets the same verdicts.
    use walshcheck_gadgets::composition::composition_independent;
    let f = refresh_paper();
    let g = isw_and(2);
    let chained = chain(
        &f,
        &g,
        &[Binding {
            inner_output: OutputId(0),
            outer_secret: SecretId(0),
        }],
    )
    .expect("composes");
    let handwritten = composition_independent();
    for prop in [Property::Ni(2), Property::Sni(2), Property::Probing(2)] {
        assert_eq!(
            check(&chained, prop),
            check(&handwritten, prop),
            "{prop:?} verdicts must agree"
        );
    }
}

#[test]
fn double_refresh_chain_is_sni() {
    // refresh ∘ refresh via chain — names collide, sharing stays sound.
    let f = refresh_isw(1);
    let g = refresh_isw(1);
    let h = chain(
        &f,
        &g,
        &[Binding {
            inner_output: OutputId(0),
            outer_secret: SecretId(0),
        }],
    )
    .expect("composes");
    assert_eq!(h.num_secrets(), 1);
    assert!(check(&h, Property::Sni(1)));
    // And the result still just computes the identity.
    use walshcheck_gadgets::test_util::check_gadget_function;
    check_gadget_function(&h, &|s| s[0]);
}

#[test]
fn composed_netlists_round_trip_through_ilang() {
    let f = refresh_isw(1);
    let g = isw_and(1);
    let h = chain(
        &f,
        &g,
        &[Binding {
            inner_output: OutputId(0),
            outer_secret: SecretId(0),
        }],
    )
    .expect("composes");
    let text = write_ilang(&h);
    let back = parse_ilang(&text).expect("round trip");
    assert_eq!(back.num_secrets(), h.num_secrets());
    assert_eq!(check(&back, Property::Sni(1)), check(&h, Property::Sni(1)));
}
