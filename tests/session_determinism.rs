//! Thread-count and cache independence of the work-stealing scheduler.
//!
//! The scheduler's contract: the verdict — secure flag, witness
//! combination, witness reason — is identical whatever the worker count,
//! because violations are resolved to the minimal enumeration index
//! before reporting. On secure runs the enumeration is exhaustive, so the
//! combination count is pinned too; on insecure runs the count is
//! scheduling-dependent (workers may probe a few extra combinations
//! before cancellation propagates) and is deliberately not asserted.
//! These tests pin that contract for every engine over the shipped
//! corpus and the built-in benchmarks.
//!
//! The prefix cache (DESIGN.md §9) carries the same contract: caching
//! partial convolutions is a pure time/memory trade, so verdict and
//! witness must be byte-identical with the cache on, off, or thrashing
//! under a tiny budget — at any thread count.

use walshcheck::core::{Backend, Job, JobSpec, Report};
use walshcheck::prelude::*;
use walshcheck_gadgets::composition::composition_fig1;
use walshcheck_gadgets::isw::isw_and_broken;

fn engines() -> [EngineKind; 4] {
    [
        EngineKind::Lil,
        EngineKind::Map,
        EngineKind::Mapi,
        EngineKind::Fujita,
    ]
}

/// Runs `prop` on `n` single- and multi-threaded and asserts the verdicts
/// are indistinguishable (including the witness, probe for probe).
fn assert_thread_independent(label: &str, n: &Netlist, prop: Property, engine: EngineKind) {
    let serial = Session::new(n)
        .expect("valid")
        .engine(engine)
        .property(prop)
        .threads(1)
        .run();
    let parallel = Session::new(n)
        .expect("valid")
        .engine(engine)
        .property(prop)
        .threads(4)
        .run();
    assert_eq!(
        serial.secure, parallel.secure,
        "{label} {prop:?} {engine}: verdict flipped"
    );
    match (&serial.witness, &parallel.witness) {
        (None, None) => {
            // A clean bill of health means exhaustive enumeration, so the
            // combination count must match exactly. (With a witness the
            // count is scheduling-dependent: other workers may examine a
            // few combinations past the minimal violation before the
            // cancellation flag reaches them.)
            assert_eq!(
                serial.stats.combinations, parallel.stats.combinations,
                "{label} {prop:?} {engine}: combination counts differ"
            );
        }
        (Some(a), Some(b)) => {
            assert_eq!(
                a.combination, b.combination,
                "{label} {prop:?} {engine}: different witness combination"
            );
            assert_eq!(
                a.mask, b.mask,
                "{label} {prop:?} {engine}: different witness mask"
            );
            assert_eq!(
                a.reason, b.reason,
                "{label} {prop:?} {engine}: different reason"
            );
        }
        (a, b) => panic!(
            "{label} {prop:?} {engine}: witness presence differs (serial: {}, parallel: {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

#[test]
fn corpus_verdicts_are_thread_count_independent() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory present")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "il"))
        .collect();
    files.sort();
    assert!(!files.is_empty());
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable");
        let n = parse_ilang(&text).expect("corpus parses");
        let shares = n.shares_of(walshcheck::circuit::SecretId(0)).len() as u32;
        let d = shares.saturating_sub(1).max(1);
        let label = path.file_name().unwrap().to_string_lossy().into_owned();
        for engine in engines() {
            assert_thread_independent(&label, &n, Property::Probing(d), engine);
        }
    }
}

#[test]
fn benchmark_verdicts_are_thread_count_independent() {
    for bench in Benchmark::fast() {
        let n = bench.netlist();
        let d = bench.security_order();
        for engine in engines() {
            assert_thread_independent(&bench.name(), &n, Property::Sni(d), engine);
        }
    }
}

#[test]
fn witnesses_are_thread_count_independent_on_insecure_gadgets() {
    // Insecure gadgets are where scheduling races could leak through: any
    // worker may stumble on *a* violation first, but the reported witness
    // must still be the serial one (minimal enumeration index).
    for (label, n, prop) in [
        ("isw-2-broken", isw_and_broken(2), Property::Sni(2)),
        ("fig1", composition_fig1(), Property::Ni(2)),
        ("ti-1", Benchmark::Ti1.netlist(), Property::Sni(1)),
        ("dom-1", Benchmark::Dom(1).netlist(), Property::Probing(2)),
    ] {
        for engine in engines() {
            assert_thread_independent(label, &n, prop, engine);
        }
    }
}

/// Runs `prop` on `n` with the prefix cache on and off (at `threads`
/// workers) and asserts the verdicts are byte-identical: the cache is a
/// pure time/memory trade and must never influence the result.
fn assert_cache_transparent(
    label: &str,
    n: &Netlist,
    prop: Property,
    engine: EngineKind,
    threads: usize,
) {
    let run = |cache: bool| {
        Session::new(n)
            .expect("valid")
            .engine(engine)
            .property(prop)
            .cache(cache)
            .threads(threads)
            .run()
    };
    let cached = run(true);
    let uncached = run(false);
    assert_eq!(
        cached.secure, uncached.secure,
        "{label} {prop:?} {engine} t{threads}: cache flipped the verdict"
    );
    assert_eq!(
        cached.witness, uncached.witness,
        "{label} {prop:?} {engine} t{threads}: cache changed the witness"
    );
    if cached.witness.is_none() {
        assert_eq!(
            cached.stats.combinations, uncached.stats.combinations,
            "{label} {prop:?} {engine} t{threads}: combination counts differ"
        );
    }
    assert_eq!(
        uncached.stats.cache_hits + uncached.stats.cache_misses,
        0,
        "{label} {prop:?} {engine} t{threads}: disabled cache still counted"
    );
}

#[test]
fn corpus_verdicts_are_cache_independent() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory present")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "il"))
        .collect();
    files.sort();
    assert!(!files.is_empty());
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable");
        let n = parse_ilang(&text).expect("corpus parses");
        let shares = n.shares_of(walshcheck::circuit::SecretId(0)).len() as u32;
        let d = shares.saturating_sub(1).max(1);
        let label = path.file_name().unwrap().to_string_lossy().into_owned();
        for engine in engines() {
            for threads in [1, 4] {
                assert_cache_transparent(&label, &n, Property::Probing(d), engine, threads);
            }
        }
    }
}

#[test]
fn cache_is_transparent_on_insecure_gadgets_and_ni_workloads() {
    // Insecure gadgets pin witness identity; the NI(d+2) workloads reach
    // tuple sizes ≥ 3 where prefix reuse actually fires.
    for (label, n, prop) in [
        ("isw-2-broken", isw_and_broken(2), Property::Sni(2)),
        ("ti-1", Benchmark::Ti1.netlist(), Property::Sni(1)),
        ("dom-1", Benchmark::Dom(1).netlist(), Property::Ni(3)),
        ("dom-2", Benchmark::Dom(2).netlist(), Property::Ni(4)),
    ] {
        for engine in engines() {
            for threads in [1, 4] {
                assert_cache_transparent(label, &n, prop, engine, threads);
            }
        }
    }
}

#[test]
fn tiny_cache_budgets_only_cost_time() {
    // A budget small enough to thrash (constant evictions / oversized
    // rejections) must still produce the exact serial verdict.
    let n = Benchmark::Dom(2).netlist();
    for engine in engines() {
        let full = Session::new(&n)
            .expect("valid")
            .engine(engine)
            .property(Property::Ni(4))
            .run();
        let tiny = Session::new(&n)
            .expect("valid")
            .engine(engine)
            .property(Property::Ni(4))
            .cache_budget(4096)
            .threads(4)
            .run();
        assert_eq!(full.secure, tiny.secure, "{engine}: tiny budget flipped");
        assert_eq!(full.witness, tiny.witness, "{engine}: tiny budget witness");
    }
}

#[test]
fn prefix_cache_fires_on_deep_tuples() {
    // NI(4) on dom-2 enumerates tuples of up to four probes; consecutive
    // tuples share prefixes, so the cache must report real traffic.
    let n = Benchmark::Dom(2).netlist();
    let v = Session::new(&n)
        .expect("valid")
        .property(Property::Ni(4))
        .run();
    assert!(
        v.stats.cache_hits > 0,
        "no prefix-cache hits: {:?}",
        v.stats
    );
    assert!(v.stats.cache_misses > 0, "no misses recorded");
    assert!(v.stats.cache_peak_bytes > 0, "no footprint recorded");
}

#[test]
fn report_artifacts_are_byte_identical_across_thread_counts() {
    // The report/5 artifact carries only deterministic data (no timings,
    // no cache counters, no thread count), so its canonical bytes — and
    // therefore its content hash — must be identical whatever the worker
    // count or cache configuration. That invariant is what lets the
    // daemon's artifact store use (netlist hash, spec identity) as a cache
    // key and serve resubmissions from disk.
    for (label, n, prop) in [
        ("dom-1", Benchmark::Dom(1).netlist(), Property::Sni(1)),
        ("ti-1", Benchmark::Ti1.netlist(), Property::Sni(1)),
        ("isw-2-broken", isw_and_broken(2), Property::Sni(2)),
    ] {
        let artifact = |threads: usize, cache: bool| {
            let mut spec = JobSpec::new(prop);
            spec.threads = threads;
            spec.options.cache = cache;
            let mut job = Job::new(&n, spec).expect("valid");
            let verdict = job.run();
            let report = Report::new(&n, job.spec(), &verdict);
            (
                report.canonical_json().to_string(),
                report.hash().to_string(),
            )
        };
        let (base_bytes, base_hash) = artifact(1, true);
        for (threads, cache) in [(4, true), (4, false), (16, true)] {
            let (bytes, hash) = artifact(threads, cache);
            assert_eq!(
                base_bytes, bytes,
                "{label}: artifact bytes differ at t{threads} cache={cache}"
            );
            assert_eq!(base_hash, hash, "{label}: artifact hash differs");
        }
    }
}

#[test]
fn report_artifacts_are_byte_identical_across_dd_backends() {
    // The DD backend (per-worker private arenas vs one shared concurrent
    // store) is a speed/memory knob, never a result knob: for every engine,
    // at 1, 4 and 8 workers, both backends must produce byte-identical
    // report/5 artifacts — which is why `JobSpec::identity_json` excludes
    // the backend and the artifact store shares results across it.
    for (label, n, prop) in [
        ("dom-1", Benchmark::Dom(1).netlist(), Property::Sni(1)),
        ("isw-2-broken", isw_and_broken(2), Property::Sni(2)),
    ] {
        for engine in engines() {
            let artifact = |backend: Backend, threads: usize| {
                let mut spec = JobSpec::new(prop);
                spec.options.engine = engine;
                spec.options.backend = backend;
                spec.threads = threads;
                let mut job = Job::new(&n, spec).expect("valid");
                let verdict = job.run();
                let report = Report::new(&n, job.spec(), &verdict);
                (
                    report.canonical_json().to_string(),
                    report.hash().to_string(),
                )
            };
            let (base_bytes, base_hash) = artifact(Backend::Private, 1);
            for backend in [Backend::Private, Backend::Shared] {
                for threads in [1usize, 4, 8] {
                    let (bytes, hash) = artifact(backend, threads);
                    assert_eq!(
                        base_bytes, bytes,
                        "{label} {engine}: artifact bytes differ on {backend} t{threads}"
                    );
                    assert_eq!(
                        base_hash, hash,
                        "{label} {engine}: artifact hash differs on {backend} t{threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn report_artifacts_are_byte_identical_across_speed_knobs() {
    // PR-10's speed knobs — the dense spectral kernel (`dense_cut`), the
    // in-sweep sifted screen (`SiftMode::Auto`) and the bounded spectral
    // memos — are pure time/memory trades like the prefix cache and the
    // DD backend before them. The full matrix (dense kernel on/off ×
    // sift auto/rescue/off × private/shared store × 1/8 workers) must
    // produce byte-identical report/5 artifacts, which is why
    // `JobSpec::identity_json` excludes both knobs.
    for (label, n, prop) in [
        ("dom-1", Benchmark::Dom(1).netlist(), Property::Sni(1)),
        ("ti-1", Benchmark::Ti1.netlist(), Property::Sni(1)),
        ("isw-2-broken", isw_and_broken(2), Property::Sni(2)),
    ] {
        for engine in engines() {
            let artifact = |dense_cut: u32, sift: SiftMode, backend: Backend, threads: usize| {
                let mut spec = JobSpec::new(prop);
                spec.options.engine = engine;
                spec.options.dense_cut = dense_cut;
                spec.options.sift = sift;
                spec.options.backend = backend;
                spec.threads = threads;
                let mut job = Job::new(&n, spec).expect("valid");
                let verdict = job.run();
                let report = Report::new(&n, job.spec(), &verdict);
                (
                    report.canonical_json().to_string(),
                    report.hash().to_string(),
                )
            };
            let (base_bytes, base_hash) = artifact(
                VerifyOptions::default().dense_cut,
                SiftMode::Rescue,
                Backend::Private,
                1,
            );
            for dense_cut in [12u32, 0] {
                for sift in [SiftMode::Auto, SiftMode::Rescue, SiftMode::Off] {
                    for (backend, threads) in [
                        (Backend::Private, 1usize),
                        (Backend::Private, 8),
                        (Backend::Shared, 8),
                    ] {
                        let (bytes, hash) = artifact(dense_cut, sift, backend, threads);
                        assert_eq!(
                            base_bytes, bytes,
                            "{label} {engine}: artifact bytes differ at dense_cut={dense_cut} \
                             sift={sift} {backend} t{threads}"
                        );
                        assert_eq!(
                            base_hash, hash,
                            "{label} {engine}: artifact hash differs at dense_cut={dense_cut} \
                             sift={sift} {backend} t{threads}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn thread_counts_beyond_the_workload_are_harmless() {
    // More workers than batches: the extras must exit cleanly.
    let n = Benchmark::Dom(1).netlist();
    let serial = Session::new(&n)
        .expect("valid")
        .property(Property::Sni(1))
        .run();
    let wide = Session::new(&n)
        .expect("valid")
        .property(Property::Sni(1))
        .threads(16)
        .run();
    assert_eq!(serial.secure, wide.secure);
    assert_eq!(serial.stats.combinations, wide.stats.combinations);
}
