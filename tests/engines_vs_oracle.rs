//! Cross-validation: every engine × mode must agree with the exhaustive
//! distribution oracle on every gadget small enough to enumerate.

use walshcheck::prelude::*;
use walshcheck_core::exhaustive::exhaustive_check;
use walshcheck_core::sites::SiteOptions;
use walshcheck_gadgets::composition::{composition_fig1, composition_independent};
use walshcheck_gadgets::isw::{isw_and, isw_and_broken};
use walshcheck_gadgets::refresh::{refresh_circular, refresh_paper};

fn gadget_zoo() -> Vec<(String, Netlist, u32)> {
    vec![
        ("ti-1".into(), Benchmark::Ti1.netlist(), 1),
        ("trichina-1".into(), Benchmark::Trichina1.netlist(), 1),
        ("isw-1".into(), isw_and(1), 1),
        ("isw-2".into(), isw_and(2), 2),
        ("isw-2-broken".into(), isw_and_broken(2), 2),
        ("dom-1".into(), Benchmark::Dom(1).netlist(), 1),
        ("dom-2".into(), Benchmark::Dom(2).netlist(), 2),
        ("refresh-fig1".into(), refresh_paper(), 2),
        ("refresh-circ-2".into(), refresh_circular(2), 2),
        ("fig1".into(), composition_fig1(), 2),
        ("fig1-indep".into(), composition_independent(), 2),
    ]
}

fn engines() -> [EngineKind; 4] {
    [
        EngineKind::Lil,
        EngineKind::Map,
        EngineKind::Mapi,
        EngineKind::Fujita,
    ]
}

fn run(netlist: &Netlist, prop: Property, opts: VerifyOptions) -> bool {
    Session::new(netlist)
        .expect("valid")
        .options(opts)
        .property(prop)
        .run()
        .secure
}

#[test]
fn all_engines_match_the_oracle_on_sni_and_ni() {
    for (name, netlist, d) in gadget_zoo() {
        for prop in [Property::Ni(d), Property::Sni(d)] {
            let oracle = exhaustive_check(&netlist, prop, &SiteOptions::default())
                .expect("small gadget")
                .secure;
            for engine in engines() {
                for mode in [CheckMode::Joint, CheckMode::RowWise] {
                    let opts = VerifyOptions::builder().engine(engine).mode(mode).build();
                    let got = run(&netlist, prop, opts);
                    assert_eq!(
                        got, oracle,
                        "{name} {prop:?} {engine} {mode:?} disagrees with oracle"
                    );
                }
            }
        }
    }
}

#[test]
fn all_engines_match_the_oracle_on_probing() {
    for (name, netlist, d) in gadget_zoo() {
        // Also check one order above the design order (usually insecure).
        for order in [d, d + 1] {
            let prop = Property::Probing(order);
            let oracle = exhaustive_check(&netlist, prop, &SiteOptions::default())
                .expect("small gadget")
                .secure;
            for engine in engines() {
                let got = run(
                    &netlist,
                    prop,
                    VerifyOptions::builder().engine(engine).build(),
                );
                assert_eq!(
                    got, oracle,
                    "{name} {prop:?} {engine} disagrees with oracle"
                );
            }
        }
    }
}

#[test]
fn pini_matches_the_oracle() {
    for (name, netlist, d) in gadget_zoo() {
        let prop = Property::Pini(d);
        let oracle = exhaustive_check(&netlist, prop, &SiteOptions::default())
            .expect("small gadget")
            .secure;
        for engine in [EngineKind::Map, EngineKind::Mapi] {
            let got = run(
                &netlist,
                prop,
                VerifyOptions::builder().engine(engine).build(),
            );
            assert_eq!(
                got, oracle,
                "{name} {prop:?} {engine} disagrees with oracle"
            );
        }
    }
}

#[test]
fn prefilter_and_ordering_do_not_change_verdicts() {
    for (name, netlist, d) in gadget_zoo() {
        for prop in [Property::Sni(d), Property::Probing(d + 1)] {
            let reference = run(&netlist, prop, VerifyOptions::default());
            for prefilter in [false, true] {
                for largest_first in [false, true] {
                    let opts = VerifyOptions::builder()
                        .prefilter(prefilter)
                        .largest_first(largest_first)
                        .build();
                    let got = run(&netlist, prop, opts);
                    assert_eq!(
                        got, reference,
                        "{name} {prop:?} prefilter={prefilter} largest_first={largest_first}"
                    );
                }
            }
        }
    }
}

#[test]
fn heuristic_is_sound() {
    // Whenever the maskVerif-style heuristic claims "secure", the oracle
    // must agree (the converse may fail: the heuristic is incomplete).
    use walshcheck_core::heuristic::heuristic_check;
    for (name, netlist, d) in gadget_zoo() {
        for prop in [Property::Probing(d), Property::Ni(d), Property::Sni(d)] {
            let h = heuristic_check(&netlist, prop, &SiteOptions::default()).expect("valid");
            if h.secure == Some(true) {
                let oracle = exhaustive_check(&netlist, prop, &SiteOptions::default())
                    .expect("small gadget")
                    .secure;
                assert!(
                    oracle,
                    "{name} {prop:?}: heuristic claimed secure, oracle disagrees"
                );
            }
        }
    }
}

#[test]
fn witnesses_are_reported_with_probe_lists() {
    let v = Session::new(&isw_and_broken(2))
        .expect("valid")
        .property(Property::Sni(2))
        .run();
    assert!(!v.secure);
    let w = v.witness.expect("witness");
    assert!(!w.combination.is_empty());
    assert!(w.combination.len() <= 2);
    assert!(!w.reason.is_empty());
}
