//! The crash-point explorer: exhaustive crash-consistency proof for the
//! `walshcheckd` artifact store (DESIGN.md §16).
//!
//! One job lifecycle — submit, sweep, done — is recorded through
//! [`walshcheck::core::iofs::TracingFs`]; every prefix of the recorded
//! schedule is a crash point, materialized under all three
//! [`CrashMode`]s. Every materialized tree must recover: the store
//! opens, the integrity scan quarantines or rebuilds whatever the crash
//! damaged, the job is never stranded, and the recovered `report.json`
//! is byte-identical to the uninterrupted run.
//!
//! The fault-injection tests at the bottom cross-check the simulated
//! page-cache model against reality: `crash-at-io-op=N` aborts a *real*
//! child `walshcheck serve` process at sampled points of the same
//! schedule, and recovery must hold there too. Those tests mutate the
//! process-global `WALSHCHECK_FAULT` variable (children inherit it), so
//! everything env-touching serializes on one lock.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
#[cfg(feature = "fault-inject")]
use std::time::{Duration, Instant};

use walshcheck::core::iofs::CrashMode;
use walshcheck::core::json::{self, Json};
use walshcheck::core::{Job, JobSpec, Report};
use walshcheck::daemon::crashsim;
use walshcheck::daemon::store::FsyncEvents;
use walshcheck::prelude::*;

/// Serializes the tests that set `WALSHCHECK_FAULT` or spawn children
/// (which inherit it) — the variable is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_lock() -> MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// RAII for `WALSHCHECK_FAULT`: clears on drop even when the test panics.
#[cfg(feature = "fault-inject")]
struct FaultPlan;

#[cfg(feature = "fault-inject")]
impl FaultPlan {
    fn set(plan: &str) -> FaultPlan {
        std::env::set_var("WALSHCHECK_FAULT", plan);
        FaultPlan
    }
}

#[cfg(feature = "fault-inject")]
impl Drop for FaultPlan {
    fn drop(&mut self) {
        std::env::remove_var("WALSHCHECK_FAULT");
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("walshcheck-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The lifecycle every test in this file replays: SNI on the first-order
/// DOM multiplier, one worker (a deterministic schedule), checkpoint
/// after every batch, event log never fsynced — the most adversarial
/// policy for the crash model to chew on.
fn spec_doc() -> Json {
    let mut spec = JobSpec::new(Property::Sni(1));
    spec.threads = 1;
    json::parse(&spec.to_json().to_canonical()).expect("spec doc")
}

fn netlist_text() -> String {
    write_ilang(&Benchmark::Dom(1).netlist())
}

/// The report an uninterrupted in-process run produces — the byte-level
/// ground truth every recovery must reproduce.
fn reference_report() -> Vec<u8> {
    let netlist = parse_ilang(&netlist_text()).expect("canonical dump parses");
    let mut spec = JobSpec::new(Property::Sni(1));
    spec.threads = 1;
    let mut job = Job::new(&netlist, spec).expect("valid netlist");
    let verdict = job.run();
    Report::new(&netlist, job.spec(), &verdict)
        .canonical_json()
        .as_bytes()
        .to_vec()
}

#[test]
fn exhaustive_crash_matrix_recovers_byte_identically() {
    let _guard = env_lock(); // children of other tests must not race the env
    let root = temp_dir("matrix-ref");
    let lifecycle =
        crashsim::record_lifecycle(&root, &spec_doc(), &netlist_text(), FsyncEvents::Never)
            .expect("traced lifecycle");
    assert_eq!(
        lifecycle.report,
        reference_report(),
        "traced run's report must already match the in-process ground truth"
    );
    assert!(
        lifecycle.ops.len() >= 50,
        "the schedule should expose at least 50 crash points, got {}",
        lifecycle.ops.len()
    );

    let crash_root = temp_dir("matrix-crash");
    let spec = spec_doc();
    let netlist = netlist_text();
    let mut points = 0usize;
    let mut resubmitted = 0usize;
    for prefix in 0..=lifecycle.ops.len() {
        for mode in CrashMode::ALL {
            let recovered =
                crashsim::crash_and_recover(&lifecycle, prefix, mode, &crash_root, &spec, &netlist)
                    .unwrap_or_else(|e| {
                        panic!(
                            "crash before op {prefix} ({}) under {} failed recovery: {e}",
                            lifecycle
                                .ops
                                .get(prefix)
                                .map_or("end of schedule".to_string(), |op| op.describe()),
                            mode.as_str()
                        )
                    });
            assert_eq!(
                recovered.report,
                lifecycle.report,
                "crash before op {prefix} under {}: recovered report diverged",
                mode.as_str()
            );
            points += 1;
            resubmitted += usize::from(recovered.resubmitted);
        }
    }
    assert!(points >= 150, "matrix covered {points} points");
    // Early crash points predate the submit's durability, so some
    // resubmits are expected; late points must all recover in place.
    assert!(resubmitted < points, "every point needed a resubmit");
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&crash_root);
}

/// Pins the durability barriers as schedule regressions: every rename is
/// eventually made durable by a parent-directory fsync, every published
/// temp file is fsynced before its rename, and the `done` state reaches
/// `status.json` durably before the index claims it.
#[test]
fn schedule_pins_rename_durability_and_status_before_index() {
    use walshcheck::core::iofs::Op;
    let _guard = env_lock();
    let root = temp_dir("schedule");
    let lifecycle =
        crashsim::record_lifecycle(&root, &spec_doc(), &netlist_text(), FsyncEvents::Never)
            .expect("traced lifecycle");
    let ops = &lifecycle.ops;

    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Rename(_, to) => {
                let parent = to.parent().expect("rename target has a parent");
                assert!(
                    ops[i..]
                        .iter()
                        .any(|later| matches!(later, Op::SyncDir(d) if d == parent)),
                    "rename at op {i} ({}) is never made durable by a sync of {}",
                    op.describe(),
                    parent.display()
                );
            }
            Op::WriteFile(path, _) if path.to_string_lossy().ends_with(".tmp") => {
                let synced_before_rename = ops[i + 1..]
                    .iter()
                    .find_map(|later| match later {
                        Op::SyncFile(p) if p == path => Some(true),
                        Op::Rename(from, _) if from == path => Some(false),
                        _ => None,
                    })
                    .unwrap_or(false);
                assert!(
                    synced_before_rename,
                    "temp write at op {i} ({}) is renamed without a data fsync",
                    op.describe()
                );
            }
            _ => {}
        }
    }

    let done_write = |name: &str| {
        ops.iter().position(|op| {
            matches!(op, Op::WriteFile(p, b)
                if p.to_string_lossy().ends_with(name)
                    && String::from_utf8_lossy(b).contains("\"state\":\"done\""))
        })
    };
    let status_done = done_write(".status.json.tmp").expect("a done status is written");
    let index_done = done_write(".index.json.tmp").expect("a done index is written");
    assert!(
        status_done < index_done,
        "done must reach status.json (op {status_done}) before index.json (op {index_done})"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A torn `checkpoint.ck` (written through the `store-torn-write` fault
/// hook — the same I/O-layer tear the integrity scan hunts) must never
/// fail the job: the runner logs a `checkpoint-rejected` event,
/// quarantines the file, and re-runs from scratch to identical bytes.
#[cfg(feature = "fault-inject")]
#[test]
fn torn_checkpoint_falls_back_to_a_from_scratch_run() {
    use std::sync::Arc;
    use walshcheck::daemon::jobs::{JobManager, PoolConfig};
    use walshcheck::daemon::store::Store;

    let _guard = env_lock();
    let root = temp_dir("torn-ck");
    let store = Store::open(&root).expect("store opens");
    let manager = Arc::new(
        JobManager::open(store, Duration::ZERO, PoolConfig::default()).expect("manager opens"),
    );
    let submitted = manager
        .submit(&spec_doc(), &netlist_text())
        .expect("submit");
    {
        // Plant the torn checkpoint through the real fault hook: half the
        // bytes land at the final path, no fsync, no rename.
        let _plan = FaultPlan::set("store-torn-write=checkpoint.ck");
        let plausible = b"walshcheck-checkpoint/1\n{\"combinations\":17,\"frontier\":[[2,0]]}\n";
        manager
            .store()
            .write_job_file(&submitted.id, "checkpoint.ck", plausible)
            .expect("torn write lands");
    }
    let planted = std::fs::read(manager.store().job_file(&submitted.id, "checkpoint.ck"))
        .expect("torn checkpoint exists");
    assert!(planted.len() < 40, "the hook should have torn the write");

    crashsim::run_to_done(&manager, &submitted.id).expect("job completes despite torn checkpoint");
    let report = std::fs::read(manager.store().job_file(&submitted.id, "report.json"))
        .expect("report exists");
    assert_eq!(
        report,
        reference_report(),
        "fallback run must be byte-identical"
    );
    let events = std::fs::read_to_string(manager.store().job_file(&submitted.id, "events.jsonl"))
        .expect("events exist");
    assert!(
        events.contains("\"event\":\"checkpoint-rejected\""),
        "the fallback must be observable in the event log: {events}"
    );
    assert!(
        root.join("quarantine")
            .join(format!("{}-checkpoint.ck", submitted.id))
            .exists(),
        "the rejected checkpoint must be quarantined"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Cross-checks the simulated page-cache model against reality: a child
/// `walshcheck serve` is aborted (`crash-at-io-op=N`) at sampled points
/// of the same I/O schedule, and recovery over the genuinely crashed
/// store must converge to the same bytes. At least 10 sampled points must
/// see a real abort.
#[cfg(feature = "fault-inject")]
#[test]
fn real_aborted_child_recovers_byte_identically() {
    let _guard = env_lock();
    let trace_root = temp_dir("abort-ref");
    let lifecycle = crashsim::record_lifecycle(
        &trace_root,
        &spec_doc(),
        &netlist_text(),
        FsyncEvents::Never,
    )
    .expect("traced lifecycle");
    let total = lifecycle.ops.len();
    // 12 points spread across the schedule, clear of the very end (the
    // child performs the same counted ops as the trace, but sampling the
    // exact tail would race job completion).
    let samples: Vec<usize> = (0..12)
        .map(|i| 1 + i * total.saturating_sub(6) / 12)
        .collect();

    let spec = spec_doc();
    let netlist = netlist_text();
    let mut aborted = 0usize;
    for &n in &samples {
        let store = temp_dir(&format!("abort-{n}"));
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_walshcheck"))
            .args([
                "serve",
                "--store",
                store.to_str().expect("utf-8 path"),
                "--checkpoint-every",
                "0",
                "--fsync-events",
                "never",
            ])
            .env("WALSHCHECK_FAULT", format!("crash-at-io-op={n}"))
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("child spawns");

        // Submit as soon as the child publishes its address; if it aborts
        // during bind the submit is skipped and recovery starts from
        // whatever (possibly nothing) survived.
        let addr_file = store.join("daemon.addr");
        let bind_deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                let text = text.trim().to_string();
                if !text.is_empty() {
                    break Some(text);
                }
            }
            if child.try_wait().expect("try_wait").is_some() || Instant::now() >= bind_deadline {
                break None;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        if let Some(addr) = addr {
            // The child may abort mid-request; any client error is part
            // of the experiment, not a test failure.
            let _ = walshcheck::daemon::Client::new(addr).submit(&spec.to_canonical(), &netlist);
        }
        let exit_deadline = Instant::now() + Duration::from_secs(60);
        let status = loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                break Some(status);
            }
            if Instant::now() >= exit_deadline {
                break None;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        match status {
            Some(status) => {
                assert!(!status.success(), "op {n}: the child should have aborted");
                aborted += 1;
            }
            None => {
                // The sampled op was past the child's total (it finished
                // the job and kept serving): not a crash point after all.
                let _ = child.kill();
                let _ = child.wait();
            }
        }

        let recovered = crashsim::recover(&store, &lifecycle.job_id, &spec, &netlist)
            .unwrap_or_else(|e| panic!("recovery after real abort at op {n} failed: {e}"));
        assert_eq!(
            recovered.report, lifecycle.report,
            "real abort at op {n}: recovered report diverged"
        );
        let _ = std::fs::remove_dir_all(&store);
    }
    assert!(
        aborted >= 10,
        "need at least 10 really-aborted children, got {aborted} of {} samples",
        samples.len()
    );
    let _ = std::fs::remove_dir_all(&trace_root);
}
