//! Golden verdict/witness fixtures pinning the DD kernel's results.
//!
//! The CUDD-style kernel (open-addressed unique tables, direct-mapped lossy
//! apply caches, monomorphized dyadic operations — DESIGN.md §12) promises
//! that its speedups are *pure* speedups: every engine produces the same
//! verdict and byte-identical witness as the straightforward `HashMap`-based
//! kernel it replaced. These tests pin that contract against a checked-in
//! fixture generated before the kernel swap, across engines × threads {1,4}
//! × prefix cache {on,off} on the shipped corpus and the dom-2/keccak-1
//! benchmarks.
//!
//! Regenerate the fixture (only when *intentionally* changing results, which
//! a kernel change never may) with:
//!
//! ```text
//! WALSHCHECK_BLESS=1 cargo test --test kernel_identity
//! ```

use std::fmt::Write as _;

use walshcheck::core::Backend;
use walshcheck::prelude::*;

fn engines() -> [EngineKind; 4] {
    [
        EngineKind::Lil,
        EngineKind::Map,
        EngineKind::Mapi,
        EngineKind::Fujita,
    ]
}

/// One deterministic fingerprint line per engine × thread count × cache
/// mode. Combination counts are only recorded on secure (exhaustive) runs;
/// with a witness the count is scheduling-dependent by design. `paper`
/// additionally pins the paper-faithful configuration (row-wise checking
/// with the prefilter off — the benchmark harness path).
fn fingerprint(
    label: &str,
    n: &Netlist,
    prop: Property,
    paper: bool,
    backend: Backend,
    out: &mut String,
) {
    for engine in engines() {
        for threads in [1usize, 4] {
            for cache in [true, false] {
                let mut session = Session::new(n)
                    .expect("valid netlist")
                    .engine(engine)
                    .property(prop)
                    .threads(threads)
                    .cache(cache)
                    .dd_backend(backend);
                if paper {
                    session = session.mode(CheckMode::RowWise).prefilter(false);
                }
                let v = session.run();
                let _ = write!(
                    out,
                    "{label} {prop:?} {engine}{} t{threads} cache={} secure={}",
                    if paper { " rowwise" } else { "" },
                    if cache { "on" } else { "off" },
                    v.secure
                );
                match &v.witness {
                    None => {
                        let _ = write!(out, " combos={}", v.stats.combinations);
                    }
                    Some(w) => {
                        let _ = write!(
                            out,
                            " witness={:?} mask={} reason={:?} coeff={:?}",
                            w.combination, w.mask, w.reason, w.coefficient
                        );
                    }
                }
                out.push('\n');
            }
        }
    }
}

fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory present")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "il"))
        .collect();
    files.sort();
    assert!(!files.is_empty());
    files
}

fn full_fingerprint(backend: Backend) -> String {
    let mut out = String::new();
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("readable");
        let n = parse_ilang(&text).expect("corpus parses");
        let shares = n.shares_of(walshcheck::circuit::SecretId(0)).len() as u32;
        let d = shares.saturating_sub(1).max(1);
        let label = path.file_name().unwrap().to_string_lossy().into_owned();
        fingerprint(&label, &n, Property::Probing(d), false, backend, &mut out);
    }
    for bench in [Benchmark::Dom(2), Benchmark::Keccak(1)] {
        let n = bench.netlist();
        fingerprint(
            &bench.name(),
            &n,
            Property::Sni(bench.security_order()),
            false,
            backend,
            &mut out,
        );
    }
    // The paper-faithful configuration exercises the row-wise per-row
    // verification paths (witness extraction included), which the default
    // joint sweep above never reaches.
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("readable");
        let n = parse_ilang(&text).expect("corpus parses");
        let shares = n.shares_of(walshcheck::circuit::SecretId(0)).len() as u32;
        let d = shares.saturating_sub(1).max(1);
        let label = path.file_name().unwrap().to_string_lossy().into_owned();
        fingerprint(&label, &n, Property::Probing(d), true, backend, &mut out);
    }
    for bench in [Benchmark::Dom(2), Benchmark::Keccak(1)] {
        let n = bench.netlist();
        fingerprint(
            &bench.name(),
            &n,
            Property::Sni(bench.security_order()),
            true,
            backend,
            &mut out,
        );
    }
    out
}

#[test]
fn verdicts_and_witnesses_match_the_pre_rewrite_kernel() {
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/kernel_verdicts.txt");
    let current = full_fingerprint(Backend::from_env());
    if std::env::var_os("WALSHCHECK_BLESS").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).expect("golden dir");
        std::fs::write(&golden_path, &current).expect("golden writable");
        eprintln!(
            "blessed {} ({} lines)",
            golden_path.display(),
            current.lines().count()
        );
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden fixture present; bless with WALSHCHECK_BLESS=1");
    if golden != current {
        // Report the first diverging line, not a megabyte diff.
        for (i, (g, c)) in golden.lines().zip(current.lines()).enumerate() {
            assert_eq!(g, c, "fingerprint diverges at line {}", i + 1);
        }
        assert_eq!(
            golden.lines().count(),
            current.lines().count(),
            "fingerprint line counts differ"
        );
        panic!("fingerprints differ in whitespace only?");
    }
}

#[test]
fn shared_backend_reproduces_the_golden_fingerprints() {
    // The shared concurrent store must be result-invisible: the complete
    // engines × threads × cache fingerprint, forced onto `Backend::Shared`,
    // matches the golden fixture blessed on the private backend line for
    // line. (The golden test above runs on the env-default backend, so
    // under WALSHCHECK_DD_BACKEND=shared both tests pin the same contract
    // from both directions.) Never re-bless the fixture for a backend
    // difference — a mismatch here is a kernel bug by definition.
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/kernel_verdicts.txt");
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden fixture present; bless with WALSHCHECK_BLESS=1");
    let current = full_fingerprint(Backend::Shared);
    for (i, (g, c)) in golden.lines().zip(current.lines()).enumerate() {
        assert_eq!(g, c, "shared backend diverges at line {}", i + 1);
    }
    assert_eq!(
        golden.lines().count(),
        current.lines().count(),
        "fingerprint line counts differ"
    );
}
