//! Graceful-shutdown tests: the process-global shutdown flag drains the
//! sweep at a batch boundary, flushes the checkpoint, and degrades the
//! verdict to `Inconclusive(Interrupted)` — and a `--resume` of the flushed
//! file reproduces the uninterrupted verdict exactly.
//!
//! The flag is per-process state, so every in-process test serializes on
//! one lock and resets the flag before releasing it. The end-to-end SIGTERM
//! test exercises a *child* process and needs no lock for the flag — only
//! the fault-injection feature for a deterministic stall.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use walshcheck::core::shutdown;
use walshcheck::prelude::*;

static FLAG_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    FLAG_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn bench(name: &str) -> Netlist {
    Benchmark::from_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .netlist()
}

fn tmp_checkpoint(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("walshcheck-shutdown-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("{tag}.ck"));
    let _ = std::fs::remove_file(&path);
    path
}

/// A shutdown requested before the sweep starts abandons all work: the
/// verdict is `Inconclusive(Interrupted)` — never `Secure`, nothing was
/// checked — at both thread counts.
#[test]
fn pre_requested_shutdown_is_interrupted_not_secure() {
    let netlist = bench("dom-2");
    let guard = lock();
    for threads in [1usize, 4] {
        shutdown::request();
        let verdict = Session::new(&netlist)
            .expect("valid netlist")
            .property(Property::Sni(2))
            .threads(threads)
            .run();
        shutdown::reset();
        assert_eq!(
            verdict.outcome,
            Outcome::Inconclusive(IncompleteReason::Interrupted),
            "{threads}t"
        );
        assert!(verdict.stats.interrupted, "{threads}t");
        assert!(verdict.witness.is_none(), "{threads}t");
        assert!(
            std::panic::catch_unwind(|| verdict.expect_secure()).is_err(),
            "{threads}t: expect_secure must reject an interrupted run"
        );
    }
    drop(guard);
}

/// An interrupted run still flushes its checkpoint, and resuming the file
/// (with the flag cleared) reproduces the uninterrupted verdict exactly.
/// The interrupt lands mid-run from another thread, so the flushed frontier
/// is partial in general — and may even be complete on a fast machine; the
/// resume identity must hold either way.
#[test]
fn interrupted_run_flushes_a_resumable_checkpoint() {
    let netlist = bench("dom-2");
    let guard = lock();
    shutdown::reset();
    let baseline = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .run();
    assert_eq!(baseline.outcome, Outcome::Secure);

    let path = tmp_checkpoint("dom2-interrupt");
    let requester = std::thread::spawn(|| {
        std::thread::sleep(Duration::from_millis(1));
        shutdown::request();
    });
    let interrupted = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .threads(2)
        .checkpoint_to(&path, Duration::ZERO)
        .run();
    requester.join().expect("requester thread");
    shutdown::reset();

    assert!(
        path.is_file(),
        "the shutdown flush left a checkpoint behind"
    );
    assert_ne!(interrupted.outcome, Outcome::Violated);
    if interrupted.outcome == Outcome::Inconclusive(IncompleteReason::Interrupted) {
        assert!(interrupted.stats.interrupted);
    }

    let resumed = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .resume_from(&path)
        .expect("fingerprint matches")
        .run();
    drop(guard);
    assert_eq!(resumed.outcome, baseline.outcome);
    assert_eq!(resumed.witness, baseline.witness);
    assert_eq!(resumed.skipped, baseline.skipped);
    assert_eq!(resumed.stats.combinations, baseline.stats.combinations);
    assert_eq!(resumed.stats.pruned, baseline.stats.pruned);
}

/// An interrupt also disables the rescue pass: rescue must not upgrade a
/// verdict whose sweep is incomplete.
#[test]
fn shutdown_suppresses_the_rescue_pass() {
    let netlist = bench("dom-2");
    let guard = lock();
    shutdown::request();
    let verdict = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .node_budget(1)
        .rescue(true)
        .run();
    shutdown::reset();
    drop(guard);
    assert_eq!(
        verdict.outcome,
        Outcome::Inconclusive(IncompleteReason::Interrupted)
    );
    assert!(
        verdict.recovery.is_none(),
        "no rescue on an interrupted sweep"
    );
}

/// End-to-end: SIGTERM against a deliberately stalled child exits with the
/// documented code 4, leaves a fingerprint-valid checkpoint, and a resumed
/// run completes with the same counters as an undisturbed reference run.
#[cfg(all(unix, feature = "fault-inject"))]
#[test]
fn sigterm_drains_flushes_and_resumes() {
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join("walshcheck-shutdown-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let ck = dir.join("sigterm.ck");
    let _ = std::fs::remove_file(&ck);
    let ck_str = ck.to_str().expect("utf-8 path");

    // ~25ms per combination: the sweep takes many seconds undisturbed, so
    // the signal below is guaranteed to land mid-run.
    let child = Command::new(env!("CARGO_BIN_EXE_walshcheck"))
        .args([
            "check",
            "bench:dom-2",
            "--property",
            "sni",
            "--json",
            "--checkpoint",
            ck_str,
            "--checkpoint-every",
            "0",
        ])
        .env("WALSHCHECK_FAULT", "stall-ms=25")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("child spawns");
    std::thread::sleep(Duration::from_millis(400));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success(), "kill -TERM delivered");
    let out = child.wait_with_output().expect("child exits");
    let stdout = String::from_utf8_lossy(&out.stdout);

    assert_eq!(
        out.status.code(),
        Some(4),
        "interrupted exit code; stdout:\n{stdout}"
    );
    assert!(stdout.contains("\"outcome\":\"inconclusive\""), "{stdout}");
    assert!(
        stdout.contains("\"degradation\":{\"reason\":\"interrupted\""),
        "{stdout}"
    );
    let text = std::fs::read_to_string(&ck).expect("checkpoint flushed");
    assert!(
        text.contains("\"schema\":\"walshcheck-checkpoint/1\""),
        "{text}"
    );

    // Resume without the stall: the remainder completes and the verdict is
    // the reference one.
    let resumed = Command::new(env!("CARGO_BIN_EXE_walshcheck"))
        .args([
            "check",
            "bench:dom-2",
            "--property",
            "sni",
            "--json",
            "--resume",
            ck_str,
        ])
        .output()
        .expect("resume runs");
    let resumed_stdout = String::from_utf8_lossy(&resumed.stdout);
    assert_eq!(resumed.status.code(), Some(0), "{resumed_stdout}");
    assert!(
        resumed_stdout.contains("\"outcome\":\"secure\""),
        "{resumed_stdout}"
    );
    assert!(
        resumed_stdout.contains("\"resumed\":true"),
        "{resumed_stdout}"
    );

    let reference = Command::new(env!("CARGO_BIN_EXE_walshcheck"))
        .args(["check", "bench:dom-2", "--property", "sni", "--json"])
        .output()
        .expect("reference runs");
    let reference_stdout = String::from_utf8_lossy(&reference.stdout);
    let counter = |s: &str, key: &str| -> String {
        let at = s
            .find(key)
            .unwrap_or_else(|| panic!("{key} missing in {s}"));
        s[at + key.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect()
    };
    for key in ["\"combinations\":", "\"pruned\":", "\"skipped_count\":"] {
        assert_eq!(
            counter(&resumed_stdout, key),
            counter(&reference_stdout, key),
            "{key} differs between the resumed and reference runs"
        );
    }
}
