//! Behavioural contracts of the verification engine: statistics coherence,
//! shard disjointness, cache reuse, and option interplay.

use walshcheck::prelude::*;
use walshcheck_core::engine::{check_parallel, Verifier};

#[test]
fn stats_counters_are_coherent() {
    let n = Benchmark::Dom(2).netlist();
    let v = check_netlist(&n, Property::Sni(2), &VerifyOptions::default()).expect("valid");
    assert!(v.secure);
    // Every non-pruned combination contributes at least one checked row.
    assert!(v.stats.rows_checked >= v.stats.combinations - v.stats.pruned);
    assert!(v.stats.pruned <= v.stats.combinations);
    // Time split is within the total.
    assert!(v.stats.convolution_time <= v.stats.total_time);
    assert!(v.stats.verification_time <= v.stats.total_time);
}

#[test]
fn disabling_the_prefilter_only_adds_work() {
    let n = Benchmark::Dom(2).netlist();
    let filtered = check_netlist(
        &n,
        Property::Sni(2),
        &VerifyOptions { prefilter: true, ..VerifyOptions::default() },
    )
    .expect("valid");
    let unfiltered = check_netlist(
        &n,
        Property::Sni(2),
        &VerifyOptions { prefilter: false, ..VerifyOptions::default() },
    )
    .expect("valid");
    assert_eq!(filtered.secure, unfiltered.secure);
    assert_eq!(filtered.stats.combinations, unfiltered.stats.combinations);
    assert!(filtered.stats.pruned > 0, "prefilter must fire on dom-2");
    assert_eq!(unfiltered.stats.pruned, 0);
    assert!(filtered.stats.rows_checked < unfiltered.stats.rows_checked);
}

#[test]
fn shards_partition_the_combination_space() {
    let n = Benchmark::Dom(2).netlist();
    let serial = check_netlist(&n, Property::Sni(2), &VerifyOptions::default()).expect("valid");
    // The merged parallel stats count every combination exactly once.
    let par = check_parallel(&n, Property::Sni(2), &VerifyOptions::default(), 3).expect("valid");
    assert_eq!(par.stats.combinations, serial.stats.combinations);
    assert_eq!(par.secure, serial.secure);
}

#[test]
fn smallest_first_finds_smaller_witnesses() {
    use walshcheck_gadgets::isw::isw_and_broken;
    let n = isw_and_broken(2);
    let largest = check_netlist(
        &n,
        Property::Sni(2),
        &VerifyOptions { largest_first: true, ..VerifyOptions::default() },
    )
    .expect("valid");
    let smallest = check_netlist(
        &n,
        Property::Sni(2),
        &VerifyOptions { largest_first: false, ..VerifyOptions::default() },
    )
    .expect("valid");
    assert!(!largest.secure && !smallest.secure);
    let wl = largest.witness.expect("witness").combination.len();
    let ws = smallest.witness.expect("witness").combination.len();
    assert!(ws <= wl, "smallest-first witness ({ws}) must not exceed largest-first ({wl})");
}

#[test]
fn row_counts_differ_between_modes() {
    // Joint mode inspects all 2^s − 1 rows per combination; row-wise only
    // the full row. Same verdict, more rows.
    let n = Benchmark::Dom(2).netlist();
    let rowwise = check_netlist(
        &n,
        Property::Sni(2),
        &VerifyOptions { mode: CheckMode::RowWise, prefilter: false, ..VerifyOptions::default() },
    )
    .expect("valid");
    let joint = check_netlist(
        &n,
        Property::Sni(2),
        &VerifyOptions { mode: CheckMode::Joint, prefilter: false, ..VerifyOptions::default() },
    )
    .expect("valid");
    assert_eq!(rowwise.secure, joint.secure);
    assert!(joint.stats.rows_checked > rowwise.stats.rows_checked);
}

#[test]
fn site_options_affect_the_search_space() {
    use walshcheck_core::sites::SiteOptions;
    let n = Benchmark::Dom(1).netlist();
    let with_inputs = check_netlist(&n, Property::Sni(1), &VerifyOptions::default())
        .expect("valid");
    let without_inputs = check_netlist(
        &n,
        Property::Sni(1),
        &VerifyOptions {
            sites: SiteOptions { include_inputs: false, ..SiteOptions::default() },
            ..VerifyOptions::default()
        },
    )
    .expect("valid");
    assert_eq!(with_inputs.secure, without_inputs.secure);
    assert!(with_inputs.stats.combinations > without_inputs.stats.combinations);
}

#[test]
fn verifier_accessors_expose_the_model() {
    let n = Benchmark::Dom(1).netlist();
    let v = Verifier::new(&n).expect("valid");
    assert_eq!(v.varmap().num_secrets(), 2);
    assert_eq!(v.netlist().name, "dom-1");
    assert_eq!(v.unfolded().bdds.num_vars() as usize, n.inputs.len());
}

#[test]
fn cyclic_netlists_are_rejected_up_front() {
    use walshcheck::circuit::netlist::{Cell, Gate, InputRole, Netlist, Wire, WireId};
    let mut n = Netlist::new("cyc");
    n.wires.push(Wire { name: "a".into() });
    n.wires.push(Wire { name: "b".into() });
    n.inputs.push((WireId(0), InputRole::Public));
    n.cells.push(Cell {
        name: "c".into(),
        gate: Gate::And,
        inputs: vec![WireId(1), WireId(0)],
        output: WireId(1),
    });
    assert!(Verifier::new(&n).is_err());
    assert!(check_netlist(&n, Property::Probing(1), &VerifyOptions::default()).is_err());
}
