//! Behavioural contracts of the verification engine: statistics coherence,
//! scheduler/stat merging, cache reuse, and option interplay.

use walshcheck::prelude::*;
use walshcheck_core::engine::Verifier;

fn check(n: &Netlist, p: Property) -> Verdict {
    Session::new(n).expect("valid").property(p).run()
}

#[test]
fn stats_counters_are_coherent() {
    let n = Benchmark::Dom(2).netlist();
    let v = check(&n, Property::Sni(2));
    assert!(v.secure);
    // Every non-pruned combination contributes at least one checked row.
    assert!(v.stats.rows_checked >= v.stats.combinations - v.stats.pruned);
    assert!(v.stats.pruned <= v.stats.combinations);
    // Time split is within the total.
    assert!(v.stats.convolution_time <= v.stats.total_time);
    assert!(v.stats.verification_time <= v.stats.total_time);
}

#[test]
fn disabling_the_prefilter_only_adds_work() {
    let n = Benchmark::Dom(2).netlist();
    let filtered = Session::new(&n)
        .expect("valid")
        .prefilter(true)
        .property(Property::Sni(2))
        .run();
    let unfiltered = Session::new(&n)
        .expect("valid")
        .prefilter(false)
        .property(Property::Sni(2))
        .run();
    assert_eq!(filtered.secure, unfiltered.secure);
    assert_eq!(filtered.stats.combinations, unfiltered.stats.combinations);
    assert!(filtered.stats.pruned > 0, "prefilter must fire on dom-2");
    assert_eq!(unfiltered.stats.pruned, 0);
    assert!(filtered.stats.rows_checked < unfiltered.stats.rows_checked);
}

#[test]
fn worker_batches_partition_the_combination_space() {
    let n = Benchmark::Dom(2).netlist();
    let serial = check(&n, Property::Sni(2));
    // The merged parallel stats count every combination exactly once.
    let par = Session::new(&n)
        .expect("valid")
        .property(Property::Sni(2))
        .threads(3)
        .run();
    assert_eq!(par.stats.combinations, serial.stats.combinations);
    assert_eq!(par.secure, serial.secure);
}

#[test]
fn modulo_shards_partition_the_combination_space() {
    // The legacy statically-sharded implementation is kept as a bench
    // baseline; it must still agree with the serial run.
    let n = Benchmark::Dom(2).netlist();
    let serial = check(&n, Property::Sni(2));
    let par =
        walshcheck_core::check_parallel_modulo(&n, Property::Sni(2), &VerifyOptions::default(), 3)
            .expect("valid");
    assert_eq!(par.stats.combinations, serial.stats.combinations);
    assert_eq!(par.secure, serial.secure);
}

#[test]
fn job_spec_and_session_agree() {
    // The 0.3 Job API and the Session builder are the same execution path;
    // a spec round-tripped through its canonical JSON must reproduce the
    // session's verdict exactly.
    use walshcheck_core::{Job, JobSpec};
    let n = Benchmark::Dom(1).netlist();
    let serial = check(&n, Property::Sni(1));
    let spec_text = JobSpec::new(Property::Sni(1)).to_json().to_canonical();
    let spec = JobSpec::parse(&walshcheck_core::json::parse(&spec_text).expect("valid json"))
        .expect("valid spec");
    let via_job = Job::new(&n, spec).expect("valid").run();
    assert!(serial.secure && via_job.secure);
    assert_eq!(serial.stats.combinations, via_job.stats.combinations);
}

#[test]
fn smallest_first_finds_smaller_witnesses() {
    use walshcheck_gadgets::isw::isw_and_broken;
    let n = isw_and_broken(2);
    let largest = Session::new(&n)
        .expect("valid")
        .largest_first(true)
        .property(Property::Sni(2))
        .run();
    let smallest = Session::new(&n)
        .expect("valid")
        .largest_first(false)
        .property(Property::Sni(2))
        .run();
    assert!(!largest.secure && !smallest.secure);
    let wl = largest.witness.expect("witness").combination.len();
    let ws = smallest.witness.expect("witness").combination.len();
    assert!(
        ws <= wl,
        "smallest-first witness ({ws}) must not exceed largest-first ({wl})"
    );
}

#[test]
fn row_counts_differ_between_modes() {
    // Joint mode inspects all 2^s − 1 rows per combination; row-wise only
    // the full row. Same verdict, more rows.
    let n = Benchmark::Dom(2).netlist();
    let rowwise = Session::new(&n)
        .expect("valid")
        .mode(CheckMode::RowWise)
        .prefilter(false)
        .property(Property::Sni(2))
        .run();
    let joint = Session::new(&n)
        .expect("valid")
        .mode(CheckMode::Joint)
        .prefilter(false)
        .property(Property::Sni(2))
        .run();
    assert_eq!(rowwise.secure, joint.secure);
    assert!(joint.stats.rows_checked > rowwise.stats.rows_checked);
}

#[test]
fn site_options_affect_the_search_space() {
    let n = Benchmark::Dom(1).netlist();
    let with_inputs = check(&n, Property::Sni(1));
    let without_inputs = Session::new(&n)
        .expect("valid")
        .options(VerifyOptions::builder().include_inputs(false).build())
        .property(Property::Sni(1))
        .run();
    assert_eq!(with_inputs.secure, without_inputs.secure);
    assert!(with_inputs.stats.combinations > without_inputs.stats.combinations);
}

#[test]
fn verifier_accessors_expose_the_model() {
    let n = Benchmark::Dom(1).netlist();
    let v = Verifier::new(&n).expect("valid");
    assert_eq!(v.varmap().num_secrets(), 2);
    assert_eq!(v.netlist().name, "dom-1");
    assert_eq!(v.unfolded().bdds.num_vars() as usize, n.inputs.len());
}

#[test]
fn cyclic_netlists_are_rejected_up_front() {
    use walshcheck::circuit::netlist::{Cell, Gate, InputRole, Netlist, Wire, WireId};
    let mut n = Netlist::new("cyc");
    n.wires.push(Wire { name: "a".into() });
    n.wires.push(Wire { name: "b".into() });
    n.inputs.push((WireId(0), InputRole::Public));
    n.cells.push(Cell {
        name: "c".into(),
        gate: Gate::And,
        inputs: vec![WireId(1), WireId(0)],
        output: WireId(1),
    });
    assert!(Verifier::new(&n).is_err());
    assert!(Session::new(&n).is_err());
}
