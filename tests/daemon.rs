//! Lifecycle tests for `walshcheckd`: submit over a real socket, poll,
//! fetch, kill, resume, restart — and the artifact-store contract that a
//! finished job's report is canonical bytes, content-hashed, byte-identical
//! to an uninterrupted in-process run, and served from disk on resubmit.
//!
//! The daemon shares the process-global shutdown flag with the library
//! (kills and daemon stops both ride on it), so every test in this file
//! serializes on one lock and leaves the flag cleared. The SIGTERM test at
//! the bottom exercises a *child* `walshcheck serve` process and needs the
//! fault-injection feature for a deterministic mid-sweep stall.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use walshcheck::core::hash::sha256_hex;
use walshcheck::core::json::{self, Json};
use walshcheck::core::shutdown;
use walshcheck::core::{Job, JobSpec, Report, REPORT_SCHEMA};
use walshcheck::daemon::{Client, Daemon, DaemonConfig};
use walshcheck::prelude::*;

static FLAG_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    FLAG_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("walshcheckd-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Binds a daemon over `store` (with `tweak` applied to the config) and
/// serves it on a background thread. Checkpoints after every batch so
/// kills always leave a resumable file. Clears any shutdown flag a
/// previous (possibly panicked) test left behind, so the accept loop does
/// not exit on arrival.
fn start_daemon_with(
    store: &Path,
    max_body: usize,
    tweak: impl FnOnce(&mut DaemonConfig),
) -> (JoinHandle<()>, Client) {
    shutdown::reset();
    let mut config = DaemonConfig::new(store);
    config.checkpoint_every = Duration::ZERO;
    config.max_body = max_body;
    tweak(&mut config);
    let daemon = Daemon::bind(&config).expect("daemon binds");
    let addr = daemon.addr();
    let handle = std::thread::spawn(move || daemon.run().expect("daemon serves"));
    (handle, Client::new(addr.to_string()))
}

fn start_daemon(store: &Path, max_body: usize) -> (JoinHandle<()>, Client) {
    start_daemon_with(store, max_body, |_| {})
}

/// Raises the shutdown flag, joins the serve thread, clears the flag.
fn stop_daemon(handle: JoinHandle<()>) {
    shutdown::request();
    handle.join().expect("daemon thread");
    shutdown::reset();
}

/// RAII for `WALSHCHECK_FAULT`: clears the variable even when the test
/// panics, so a failure does not stall every later test in this binary.
/// Only used under the flag lock — the variable is process-global.
#[cfg(feature = "fault-inject")]
struct FaultPlan;

#[cfg(feature = "fault-inject")]
impl FaultPlan {
    fn set(plan: &str) -> FaultPlan {
        std::env::set_var("WALSHCHECK_FAULT", plan);
        FaultPlan
    }
}

#[cfg(feature = "fault-inject")]
impl Drop for FaultPlan {
    fn drop(&mut self) {
        std::env::remove_var("WALSHCHECK_FAULT");
    }
}

fn spec_json(property: Property, threads: usize) -> String {
    let mut spec = JobSpec::new(property);
    spec.threads = threads;
    spec.to_json().to_canonical()
}

fn submit(client: &Client, property: Property, threads: usize, netlist: &Netlist) -> Json {
    let response = client
        .submit(&spec_json(property, threads), &write_ilang(netlist))
        .expect("submit");
    assert!(
        response.status == 200 || response.status == 201,
        "submit answered {}: {}",
        response.status,
        response.text()
    );
    json::parse(&response.text()).expect("submit body is JSON")
}

fn field<'a>(doc: &'a Json, name: &str) -> &'a str {
    doc.get(name)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("{name} missing in {doc:?}"))
}

/// Polls `GET /v1/jobs/{id}` until the job reaches `want` (or fails the
/// test on a terminal mismatch / timeout). Returns the final record.
fn wait_for(client: &Client, id: &str, want: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let response = client.get(&format!("/v1/jobs/{id}")).expect("status");
        assert_eq!(response.status, 200, "{}", response.text());
        let doc = json::parse(&response.text()).expect("status is JSON");
        let state = field(&doc, "state").to_string();
        if state == want {
            return doc;
        }
        assert!(
            !matches!(state.as_str(), "done" | "failed" | "killed" | "timed-out"),
            "job {id} settled in {state}, wanted {want}: {doc:?}"
        );
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {state}, wanted {want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The content-derived job id the daemon will assign to `(netlist, spec)`
/// — computable before submission, which the fault directives keyed by job
/// id need.
#[cfg(feature = "fault-inject")]
fn expected_job_id(netlist: &Netlist, property: Property) -> String {
    let canonical = parse_ilang(&write_ilang(netlist)).expect("canonical dump parses");
    let spec = JobSpec::new(property);
    walshcheck::daemon::store::job_id(
        &netlist_sha256(&canonical),
        &spec.identity_json().to_canonical(),
    )
}

/// The reference artifact an uninterrupted in-process run produces for the
/// same `(netlist, spec)` — what every daemon-produced report must match
/// byte for byte. The daemon stores and runs the canonical ILANG dump of
/// the submission, so the reference is built from the same round-tripped
/// netlist.
fn reference_artifact(netlist: &Netlist, property: Property, threads: usize) -> Report {
    let canonical = parse_ilang(&write_ilang(netlist)).expect("canonical dump parses");
    let mut spec = JobSpec::new(property);
    spec.threads = threads;
    let mut job = Job::new(&canonical, spec).expect("valid netlist");
    let verdict = job.run();
    Report::new(&canonical, job.spec(), &verdict)
}

#[test]
fn health_routing_and_method_mismatches() {
    let guard = lock();
    let store = temp_store("health");
    let (handle, client) = start_daemon(&store, 1 << 20);

    let health = client.get("/v1/health").expect("health");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"service\":\"walshcheckd\""));

    assert_eq!(client.get("/nope").expect("404").status, 404);
    assert_eq!(client.delete("/v1/health").expect("405").status, 405);
    assert_eq!(client.get("/v1/jobs/feedface").expect("404").status, 404);
    assert_eq!(
        client.get("/v1/jobs/feedface/report").expect("404").status,
        404
    );

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn malformed_submissions_are_rejected_not_crashed() {
    let guard = lock();
    let store = temp_store("reject");
    // A 4 KiB body cap so the oversized case stays cheap.
    let (handle, client) = start_daemon(&store, 4096);

    for (label, body) in [
        ("not JSON at all", "ilang? never heard of it".to_string()),
        ("missing spec", "{\"netlist\":\"module m\"}".to_string()),
        (
            "missing netlist",
            "{\"spec\":{\"property\":{\"kind\":\"sni\",\"order\":1}}}".to_string(),
        ),
        (
            "spec without property",
            "{\"spec\":{},\"netlist\":\"module m\"}".to_string(),
        ),
        (
            "unknown engine",
            "{\"spec\":{\"property\":{\"kind\":\"sni\",\"order\":1},\"engine\":\"cudd\"},\"netlist\":\"x\"}"
                .to_string(),
        ),
        (
            "unparseable netlist",
            "{\"spec\":{\"property\":{\"kind\":\"sni\",\"order\":1}},\"netlist\":\"garbage\"}"
                .to_string(),
        ),
    ] {
        let response = client.post("/v1/jobs", body.as_bytes()).expect(label);
        assert_eq!(response.status, 400, "{label}: {}", response.text());
    }

    // Oversized bodies are refused before they are buffered.
    let oversized = format!("{{\"netlist\":\"{}\"}}", "x".repeat(8192));
    let response = client
        .post("/v1/jobs", oversized.as_bytes())
        .expect("oversized");
    assert_eq!(response.status, 413, "{}", response.text());

    // Nothing above may have created a job.
    let list = client.get("/v1/jobs").expect("list");
    assert_eq!(list.text(), "{\"jobs\":[]}");

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn submit_poll_fetch_and_cache_hit_on_resubmit() {
    let guard = lock();
    let store = temp_store("e2e");
    let (handle, client) = start_daemon(&store, 1 << 20);
    let netlist = Benchmark::Dom(1).netlist();

    let ack = submit(&client, Property::Sni(1), 2, &netlist);
    let id = field(&ack, "id").to_string();
    assert_eq!(id.len(), 16, "content-derived id");
    assert_eq!(ack.get("cached"), Some(&Json::Bool(false)));

    let record = wait_for(&client, &id, "done");
    let report_hash = field(&record, "report_hash").to_string();

    // The artifact: canonical bytes whose SHA-256 is the advertised hash,
    // byte-identical to what an uninterrupted in-process run produces.
    let fetched = client
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    assert_eq!(fetched.status, 200);
    let body = fetched.text();
    assert!(
        body.contains(&format!("\"schema\":\"{REPORT_SCHEMA}\"")),
        "{body}"
    );
    assert!(body.contains("\"outcome\":\"secure\""), "{body}");
    assert_eq!(sha256_hex(body.as_bytes()), report_hash);
    let reference = reference_artifact(&netlist, Property::Sni(1), 1);
    assert_eq!(body, reference.canonical_json(), "artifact bytes drifted");
    assert_eq!(report_hash, reference.hash());

    // Progress events survived on disk and paginate.
    let events = client
        .get(&format!("/v1/jobs/{id}/events?since=0"))
        .expect("events");
    assert_eq!(events.status, 200);
    let events_doc = json::parse(&events.text()).expect("events JSON");
    let next = events_doc.get("next").and_then(Json::as_u64).expect("next");
    assert!(next > 0, "{}", events.text());
    assert!(events.text().contains("\"event\":\"run-started\""));
    let tail = client
        .get(&format!("/v1/jobs/{id}/events?since={next}"))
        .expect("tail");
    assert!(tail.text().contains("\"events\":[]"), "{}", tail.text());

    // Resubmitting the identical (netlist, identity) — even at a different
    // thread count, which is not part of the identity — is a cache hit.
    for threads in [2, 7] {
        let again = submit(&client, Property::Sni(1), threads, &netlist);
        assert_eq!(field(&again, "id"), id, "t{threads}");
        assert_eq!(
            again.get("cached"),
            Some(&Json::Bool(true)),
            "t{threads}: {again:?}"
        );
    }
    // A different property is a different job.
    let other = submit(&client, Property::Ni(1), 2, &netlist);
    assert_ne!(field(&other, "id"), id);

    // Killing a finished job is a conflict, not a state change.
    let kill = client.delete(&format!("/v1/jobs/{id}")).expect("kill");
    assert_eq!(kill.status, 409, "{}", kill.text());

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn queued_jobs_kill_and_resume_deterministically() {
    let guard = lock();
    let store = temp_store("killq");
    // Bind without serving: the runner thread only starts in `run`, so the
    // submission sits in `queued` and the kill/resume transitions are
    // race-free.
    let config = DaemonConfig::new(&store);
    let daemon = Daemon::bind(&config).expect("binds");
    let manager = std::sync::Arc::clone(daemon.manager());
    let netlist = Benchmark::Dom(1).netlist();
    let spec_doc = json::parse(&spec_json(Property::Sni(1), 1)).expect("spec");
    let submitted = manager
        .submit(&spec_doc, &write_ilang(&netlist))
        .expect("submits");
    assert!(submitted.created);

    use walshcheck::daemon::JobState;
    assert_eq!(
        manager.kill(&submitted.id).expect("kills"),
        JobState::Killed
    );
    let conflict = manager.kill(&submitted.id).expect_err("double kill");
    assert_eq!(conflict.status, 409);
    assert_eq!(
        manager.resume(&submitted.id).expect("resumes"),
        JobState::Queued
    );

    // Now serve: the re-enqueued job runs to completion over HTTP.
    let addr = daemon.addr();
    let handle = std::thread::spawn(move || daemon.run().expect("serves"));
    let client = Client::new(addr.to_string());
    let record = wait_for(&client, &submitted.id, "done");
    assert!(field(&record, "report_hash").len() == 64);

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn restart_recovers_the_store_and_finishes_the_job() {
    let guard = lock();
    let store = temp_store("restart");
    let netlist = Benchmark::Dom(2).netlist();

    // Daemon A: submit and stop straight away. Depending on where the stop
    // lands the job is still queued, mid-sweep (→ interrupted, checkpoint
    // flushed), or already done — recovery must finish it in every case.
    let (handle_a, client_a) = start_daemon(&store, 1 << 20);
    let ack = submit(&client_a, Property::Sni(2), 2, &netlist);
    let id = field(&ack, "id").to_string();
    std::thread::sleep(Duration::from_millis(30));
    stop_daemon(handle_a);

    // Daemon B over the same store: queued/interrupted jobs re-enqueue and
    // the checkpoint (if any) seeds the resumed sweep.
    let (handle_b, client_b) = start_daemon(&store, 1 << 20);
    let record = wait_for(&client_b, &id, "done");
    let report_hash = field(&record, "report_hash").to_string();

    // Whatever the interruption history, the artifact is byte-identical to
    // an uninterrupted run's: resume is exact, and the report carries no
    // timing or scheduling residue.
    let fetched = client_b
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    let reference = reference_artifact(&netlist, Property::Sni(2), 1);
    assert_eq!(fetched.text(), reference.canonical_json());
    assert_eq!(report_hash, reference.hash());

    // The finished job is now cache-served across restarts too.
    let again = submit(&client_b, Property::Sni(2), 4, &netlist);
    assert_eq!(field(&again, "id"), id);
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)));

    stop_daemon(handle_b);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

/// Kill lands mid-sweep deterministically: the fault-injected stall slows
/// each combination to ~25 ms, so the DELETE always catches the job
/// `running`; the interrupted sweep flushes its checkpoint, the job parks
/// in `killed`, and `POST resume` finishes it — byte-identical to an
/// uninterrupted run.
#[cfg(feature = "fault-inject")]
#[test]
fn http_kill_mid_sweep_then_resume_is_exact() {
    let guard = lock();
    let store = temp_store("killrun");
    let (handle, client) = start_daemon(&store, 1 << 20);
    let netlist = Benchmark::Dom(2).netlist();

    let fault = FaultPlan::set("stall-ms=25");
    let ack = submit(&client, Property::Sni(2), 1, &netlist);
    let id = field(&ack, "id").to_string();
    wait_for(&client, &id, "running");
    // Let at least one batch finish so the checkpoint has a frontier.
    std::thread::sleep(Duration::from_millis(200));
    let kill = client.delete(&format!("/v1/jobs/{id}")).expect("kill");
    assert_eq!(kill.status, 202, "{}", kill.text());
    let record = wait_for(&client, &id, "killed");
    assert_eq!(record.get("report_hash"), Some(&Json::Null));
    drop(fault);

    // The interrupted sweep left a resumable checkpoint behind.
    let ck = store.join("jobs").join(&id).join("checkpoint.ck");
    assert!(ck.is_file(), "no checkpoint at {}", ck.display());

    // A killed job does not auto-resume; an explicit resume finishes it.
    let resume = client
        .post(&format!("/v1/jobs/{id}/resume"), b"")
        .expect("resume");
    assert_eq!(resume.status, 200, "{}", resume.text());
    wait_for(&client, &id, "done");
    let fetched = client
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    let reference = reference_artifact(&netlist, Property::Sni(2), 1);
    assert_eq!(fetched.text(), reference.canonical_json());
    assert!(!ck.exists(), "checkpoint survives a finished sweep");

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

/// A runner panic (injected by job id) marks the job `failed` with a
/// typed reason, never takes down the accept loop, and the supervisor
/// respawns the runner — proven by an explicit resume completing on the
/// fresh runner, byte-identical to an uninterrupted run.
#[cfg(feature = "fault-inject")]
#[test]
fn runner_panic_fails_the_job_and_respawns_the_runner() {
    let guard = lock();
    let store = temp_store("panic");
    let netlist = Benchmark::Dom(1).netlist();
    let id = expected_job_id(&netlist, Property::Sni(1));

    let fault = FaultPlan::set(&format!("runner-panic-at={id}"));
    let (handle, client) = start_daemon(&store, 1 << 20);
    let ack = submit(&client, Property::Sni(1), 1, &netlist);
    assert_eq!(field(&ack, "id"), id, "precomputed id drifted");
    let record = wait_for(&client, &id, "failed");
    let error = field(&record, "error").to_string();
    assert!(error.contains("runner panic"), "untyped failure: {error}");

    // The accept loop shrugged the panic off.
    assert_eq!(client.get("/v1/health").expect("health").status, 200);

    // With the fault gone, resume runs on the respawned runner.
    drop(fault);
    let resume = client
        .post(&format!("/v1/jobs/{id}/resume"), b"")
        .expect("resume");
    assert_eq!(resume.status, 200, "{}", resume.text());
    wait_for(&client, &id, "done");
    let fetched = client
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    let reference = reference_artifact(&netlist, Property::Sni(1), 1);
    assert_eq!(fetched.text(), reference.canonical_json());

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

/// A torn `report.json` write leaves the record `done` with the correct
/// hash but corrupt bytes on disk; the next daemon's integrity scan
/// quarantines the artifact, re-queues the job, and the rerun restores
/// the exact bytes.
#[cfg(feature = "fault-inject")]
#[test]
fn torn_report_write_is_quarantined_and_requeued_on_restart() {
    let guard = lock();
    let store = temp_store("torn");
    let netlist = Benchmark::Dom(1).netlist();
    let reference = reference_artifact(&netlist, Property::Sni(1), 1);

    let fault = FaultPlan::set("store-torn-write=report.json");
    let (handle_a, client_a) = start_daemon(&store, 1 << 20);
    let ack = submit(&client_a, Property::Sni(1), 1, &netlist);
    let id = field(&ack, "id").to_string();
    let record = wait_for(&client_a, &id, "done");
    assert_eq!(field(&record, "report_hash"), reference.hash());
    stop_daemon(handle_a);
    drop(fault);

    let report_path = store.join("jobs").join(&id).join("report.json");
    let torn = std::fs::read(&report_path).expect("torn report exists");
    assert_ne!(sha256_hex(&torn), reference.hash(), "write was not torn");

    let (handle_b, client_b) = start_daemon(&store, 1 << 20);
    let quarantined = store.join("quarantine").join(format!("{id}-report.json"));
    assert!(
        quarantined.is_file(),
        "no quarantined artifact at {}",
        quarantined.display()
    );
    assert_eq!(std::fs::read(&quarantined).expect("readable"), torn);
    wait_for(&client_b, &id, "done");
    let fetched = client_b
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    assert_eq!(fetched.text(), reference.canonical_json());
    let healed = std::fs::read(&report_path).expect("healed report");
    assert_eq!(sha256_hex(&healed), reference.hash());

    stop_daemon(handle_b);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

/// The supervisor enforces per-job wall-clock deadlines: a fault-stalled
/// job blows its 1 s budget, parks in `timed-out` with a typed reason,
/// and the automatic retry (after backoff) resumes it from the
/// checkpoint to the exact uninterrupted artifact — no manual resume.
#[cfg(feature = "fault-inject")]
#[test]
fn deadline_times_out_and_automatic_retry_resumes_exactly() {
    let guard = lock();
    let store = temp_store("deadline");
    let (handle, client) = start_daemon_with(&store, 1 << 20, |config| {
        config.max_retries = 3;
        config.retry_base = Duration::from_millis(300);
    });
    let netlist = Benchmark::Dom(1).netlist();

    let fault = FaultPlan::set("job-stall-ms=1500");
    let mut spec = JobSpec::new(Property::Sni(1));
    spec.threads = 1;
    spec.timeout_secs = Some(1);
    let response = client
        .submit(&spec.to_json().to_canonical(), &write_ilang(&netlist))
        .expect("submit");
    assert!(
        response.status == 200 || response.status == 201,
        "{}",
        response.text()
    );
    let ack = json::parse(&response.text()).expect("submit body is JSON");
    let id = field(&ack, "id").to_string();

    let record = wait_for(&client, &id, "timed-out");
    drop(fault);
    assert!(
        field(&record, "error").contains("deadline"),
        "untyped timeout: {record:?}"
    );

    // No resume call: the retry fires on its own after the backoff, and
    // the deadline is identity-neutral — the retried report matches the
    // no-deadline reference byte for byte. `timed-out` stays legal while
    // the backoff clock runs (and would again if a retry lost the race
    // against the fault teardown), so this poll is bespoke.
    let deadline = Instant::now() + Duration::from_secs(120);
    let record = loop {
        let response = client.get(&format!("/v1/jobs/{id}")).expect("status");
        let doc = json::parse(&response.text()).expect("status is JSON");
        let state = field(&doc, "state").to_string();
        if state == "done" {
            break doc;
        }
        assert!(
            matches!(state.as_str(), "timed-out" | "queued" | "running"),
            "job {id} settled in {state}: {doc:?}"
        );
        assert!(Instant::now() < deadline, "retry never completed ({state})");
        std::thread::sleep(Duration::from_millis(10));
    };
    let retries = record
        .get("retries")
        .and_then(Json::as_u64)
        .expect("retries counter");
    assert!(retries >= 1, "{record:?}");
    let fetched = client
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    let reference = reference_artifact(&netlist, Property::Sni(1), 1);
    assert_eq!(fetched.text(), reference.canonical_json());

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

/// Two runners sweep distinct jobs concurrently (both observed `running`
/// at once), a daemon stop drains both mid-sweep, and a fresh 2-runner
/// daemon auto-resumes each to artifacts byte-identical to uninterrupted
/// single-runner runs.
#[cfg(feature = "fault-inject")]
#[test]
fn two_runners_overlap_drain_and_resume_byte_identically() {
    let guard = lock();
    let store = temp_store("pool2");
    let netlist = Benchmark::Dom(2).netlist();

    let fault = FaultPlan::set("stall-ms=25");
    let (handle_a, client_a) = start_daemon_with(&store, 1 << 20, |c| c.runners = 2);
    let first = field(&submit(&client_a, Property::Sni(2), 1, &netlist), "id").to_string();
    let second = field(&submit(&client_a, Property::Ni(2), 1, &netlist), "id").to_string();
    assert_ne!(first, second);

    // With one runner the second job would sit `queued` behind the
    // stalled first; with two, both must be `running` simultaneously.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let states: Vec<String> = [&first, &second]
            .iter()
            .map(|id| {
                let response = client_a.get(&format!("/v1/jobs/{id}")).expect("status");
                field(&json::parse(&response.text()).expect("JSON"), "state").to_string()
            })
            .collect();
        if states.iter().all(|s| s == "running") {
            break;
        }
        assert!(
            states.iter().all(|s| s == "queued" || s == "running"),
            "{states:?}"
        );
        assert!(Instant::now() < deadline, "no overlap: {states:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Let both sweeps pass at least one batch, then drain both at once.
    std::thread::sleep(Duration::from_millis(200));
    stop_daemon(handle_a);
    drop(fault);

    let (handle_b, client_b) = start_daemon_with(&store, 1 << 20, |c| c.runners = 2);
    for (id, property) in [(first, Property::Sni(2)), (second, Property::Ni(2))] {
        let record = wait_for(&client_b, &id, "done");
        let fetched = client_b
            .get(&format!("/v1/jobs/{id}/report"))
            .expect("report");
        let reference = reference_artifact(&netlist, property, 1);
        assert_eq!(fetched.text(), reference.canonical_json(), "job {id}");
        assert_eq!(field(&record, "report_hash"), reference.hash());
    }

    stop_daemon(handle_b);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

/// Long-poll semantics and the connection cap: `wait_ms` answers
/// immediately on a terminal job, blocks for the window on a job with no
/// new events, and a saturated daemon turns the excess connection away
/// with `503` + `Retry-After` — then recovers when the slot frees.
#[test]
fn long_poll_events_and_connection_cap() {
    let guard = lock();
    let netlist = Benchmark::Dom(1).netlist();

    // Terminal job: a long poll answers immediately even with a large
    // wait window.
    let store = temp_store("poll");
    let (handle, client) = start_daemon(&store, 1 << 20);
    let ack = submit(&client, Property::Sni(1), 1, &netlist);
    let id = field(&ack, "id").to_string();
    wait_for(&client, &id, "done");
    let started = Instant::now();
    let events = client.events(&id, 0, 10_000).expect("events");
    assert_eq!(events.status, 200, "{}", events.text());
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "long-poll blocked on a terminal job"
    );
    let doc = json::parse(&events.text()).expect("events JSON");
    assert_eq!(field(&doc, "state"), "done");
    assert!(doc.get("next").and_then(Json::as_u64).expect("next") > 0);
    stop_daemon(handle);
    let _ = std::fs::remove_dir_all(&store);

    // Wait-expiry needs a job that stays non-terminal: bind without
    // serving so the submission sits `queued`, then long-poll in-process.
    let store = temp_store("poll-wait");
    let config = DaemonConfig::new(&store);
    let daemon = Daemon::bind(&config).expect("binds");
    let manager = std::sync::Arc::clone(daemon.manager());
    let spec_doc = json::parse(&spec_json(Property::Sni(1), 1)).expect("spec");
    let queued = manager
        .submit(&spec_doc, &write_ilang(&netlist))
        .expect("submits");
    let started = Instant::now();
    let body = manager.events(&queued.id, 0, 300).expect("events");
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(250),
        "poll returned after {elapsed:?}, before the wait expired"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "poll overstayed: {elapsed:?}"
    );
    assert!(body.contains("\"state\":\"queued\""), "{body}");
    drop(daemon);
    let _ = std::fs::remove_dir_all(&store);

    // Connection cap: with the single slot held by a silent client, the
    // next connection is answered 503 + Retry-After on the accept thread;
    // releasing the slot restores service.
    use std::io::Read as _;
    let store = temp_store("cap");
    let (handle, client) = start_daemon_with(&store, 1 << 20, |c| c.max_connections = 1);
    let addr = std::fs::read_to_string(store.join("daemon.addr"))
        .expect("daemon.addr")
        .trim()
        .to_string();
    let hold = std::net::TcpStream::connect(&addr).expect("first connection");
    std::thread::sleep(Duration::from_millis(100)); // let accept claim the slot
                                                    // The 503 is written on the accept thread before any request is read,
                                                    // so send nothing — writing a request the server never drains would
                                                    // turn the close into a connection reset.
    let mut turned_away = std::net::TcpStream::connect(&addr).expect("second connection");
    turned_away
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reply = String::new();
    turned_away.read_to_string(&mut reply).expect("reads");
    assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
    assert!(reply.contains("Retry-After: 1"), "{reply}");
    drop(turned_away);
    drop(hold);
    std::thread::sleep(Duration::from_millis(100));
    let health = client.get("/v1/health").expect("health after release");
    assert_eq!(health.status, 200, "cap slot never freed");
    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

/// The client's connect retry backs off before giving up: against a port
/// nothing listens on, two retries at a 20 ms base cost at least
/// 20 + 40 ms before the error surfaces.
#[test]
fn client_connect_retry_backs_off_before_failing() {
    // Reserve an ephemeral port, then free it so nothing listens there.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        listener.local_addr().expect("addr").to_string()
    };
    let client = Client::new(dead).connect_retries(2, Duration::from_millis(20));
    let started = Instant::now();
    let err = client.get("/v1/health").expect_err("nothing listens");
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(60),
        "no backoff before {err}: {elapsed:?}"
    );
}

/// End-to-end across processes: `walshcheck serve` is SIGTERMed mid-sweep,
/// exits 0 after draining, and a fresh `serve` over the same store
/// auto-resumes the interrupted job to the exact uninterrupted artifact.
#[cfg(all(unix, feature = "fault-inject"))]
#[test]
fn sigterm_against_a_serving_child_drains_and_resumes() {
    use std::process::{Command, Stdio};

    let guard = lock();
    let store = temp_store("sigterm");
    let netlist = Benchmark::Dom(2).netlist();
    let store_str = store.to_str().expect("utf-8 path").to_string();
    let serve = |stalled: bool| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_walshcheck"));
        cmd.args(["serve", "--store", &store_str, "--checkpoint-every", "0"])
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        if stalled {
            cmd.env("WALSHCHECK_FAULT", "stall-ms=25");
        } else {
            cmd.env_remove("WALSHCHECK_FAULT");
        }
        cmd.spawn().expect("serve spawns")
    };
    let wait_addr = || {
        let path = store.join("daemon.addr");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(addr) = std::fs::read_to_string(&path) {
                let addr = addr.trim().to_string();
                // The previous incarnation's file is overwritten at bind;
                // accept whatever answers a health check.
                let client = Client::new(addr.clone());
                if matches!(client.get("/v1/health"), Ok(r) if r.status == 200) {
                    return client;
                }
            }
            assert!(Instant::now() < deadline, "no daemon.addr in {store_str}");
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    let mut child = serve(true);
    let client = wait_addr();
    let ack = submit(&client, Property::Sni(2), 1, &netlist);
    let id = field(&ack, "id").to_string();
    wait_for(&client, &id, "running");
    std::thread::sleep(Duration::from_millis(200));

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let status = child.wait().expect("child exits");
    assert_eq!(status.code(), Some(0), "graceful serve exit");

    // The store records the interruption durably.
    let status_text = std::fs::read_to_string(store.join("jobs").join(&id).join("status.json"))
        .expect("status.json persisted");
    assert!(
        status_text.contains("\"state\":\"interrupted\"")
            || status_text.contains("\"state\":\"queued\""),
        "{status_text}"
    );

    // A fresh daemon (no stall) auto-resumes and completes it.
    let mut child = serve(false);
    let client = wait_addr();
    let record = wait_for(&client, &id, "done");
    let fetched = client
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    let reference = reference_artifact(&netlist, Property::Sni(2), 1);
    assert_eq!(fetched.text(), reference.canonical_json());
    assert_eq!(field(&record, "report_hash"), reference.hash());

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    assert_eq!(child.wait().expect("exits").code(), Some(0));
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}
