//! Lifecycle tests for `walshcheckd`: submit over a real socket, poll,
//! fetch, kill, resume, restart — and the artifact-store contract that a
//! finished job's report is canonical bytes, content-hashed, byte-identical
//! to an uninterrupted in-process run, and served from disk on resubmit.
//!
//! The daemon shares the process-global shutdown flag with the library
//! (kills and daemon stops both ride on it), so every test in this file
//! serializes on one lock and leaves the flag cleared. The SIGTERM test at
//! the bottom exercises a *child* `walshcheck serve` process and needs the
//! fault-injection feature for a deterministic mid-sweep stall.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use walshcheck::core::hash::sha256_hex;
use walshcheck::core::json::{self, Json};
use walshcheck::core::shutdown;
use walshcheck::core::{Job, JobSpec, Report, REPORT_SCHEMA};
use walshcheck::daemon::{Client, Daemon, DaemonConfig};
use walshcheck::prelude::*;

static FLAG_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    FLAG_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("walshcheckd-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Binds a daemon over `store` and serves it on a background thread.
/// Checkpoints after every batch so kills always leave a resumable file.
/// Clears any shutdown flag a previous (possibly panicked) test left
/// behind, so the accept loop does not exit on arrival.
fn start_daemon(store: &Path, max_body: usize) -> (JoinHandle<()>, Client) {
    shutdown::reset();
    let mut config = DaemonConfig::new(store);
    config.checkpoint_every = Duration::ZERO;
    config.max_body = max_body;
    let daemon = Daemon::bind(&config).expect("daemon binds");
    let addr = daemon.addr();
    let handle = std::thread::spawn(move || daemon.run().expect("daemon serves"));
    (handle, Client::new(addr.to_string()))
}

/// Raises the shutdown flag, joins the serve thread, clears the flag.
fn stop_daemon(handle: JoinHandle<()>) {
    shutdown::request();
    handle.join().expect("daemon thread");
    shutdown::reset();
}

/// RAII for `WALSHCHECK_FAULT`: clears the variable even when the test
/// panics, so a failure does not stall every later test in this binary.
/// Only used under the flag lock — the variable is process-global.
#[cfg(feature = "fault-inject")]
struct FaultPlan;

#[cfg(feature = "fault-inject")]
impl FaultPlan {
    fn set(plan: &str) -> FaultPlan {
        std::env::set_var("WALSHCHECK_FAULT", plan);
        FaultPlan
    }
}

#[cfg(feature = "fault-inject")]
impl Drop for FaultPlan {
    fn drop(&mut self) {
        std::env::remove_var("WALSHCHECK_FAULT");
    }
}

fn spec_json(property: Property, threads: usize) -> String {
    let mut spec = JobSpec::new(property);
    spec.threads = threads;
    spec.to_json().to_canonical()
}

fn submit(client: &Client, property: Property, threads: usize, netlist: &Netlist) -> Json {
    let response = client
        .submit(&spec_json(property, threads), &write_ilang(netlist))
        .expect("submit");
    assert!(
        response.status == 200 || response.status == 201,
        "submit answered {}: {}",
        response.status,
        response.text()
    );
    json::parse(&response.text()).expect("submit body is JSON")
}

fn field<'a>(doc: &'a Json, name: &str) -> &'a str {
    doc.get(name)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("{name} missing in {doc:?}"))
}

/// Polls `GET /v1/jobs/{id}` until the job reaches `want` (or fails the
/// test on a terminal mismatch / timeout). Returns the final record.
fn wait_for(client: &Client, id: &str, want: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let response = client.get(&format!("/v1/jobs/{id}")).expect("status");
        assert_eq!(response.status, 200, "{}", response.text());
        let doc = json::parse(&response.text()).expect("status is JSON");
        let state = field(&doc, "state").to_string();
        if state == want {
            return doc;
        }
        assert!(
            !matches!(state.as_str(), "done" | "failed" | "killed"),
            "job {id} settled in {state}, wanted {want}: {doc:?}"
        );
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {state}, wanted {want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The reference artifact an uninterrupted in-process run produces for the
/// same `(netlist, spec)` — what every daemon-produced report must match
/// byte for byte. The daemon stores and runs the canonical ILANG dump of
/// the submission, so the reference is built from the same round-tripped
/// netlist.
fn reference_artifact(netlist: &Netlist, property: Property, threads: usize) -> Report {
    let canonical = parse_ilang(&write_ilang(netlist)).expect("canonical dump parses");
    let mut spec = JobSpec::new(property);
    spec.threads = threads;
    let mut job = Job::new(&canonical, spec).expect("valid netlist");
    let verdict = job.run();
    Report::new(&canonical, job.spec(), &verdict)
}

#[test]
fn health_routing_and_method_mismatches() {
    let guard = lock();
    let store = temp_store("health");
    let (handle, client) = start_daemon(&store, 1 << 20);

    let health = client.get("/v1/health").expect("health");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"service\":\"walshcheckd\""));

    assert_eq!(client.get("/nope").expect("404").status, 404);
    assert_eq!(client.delete("/v1/health").expect("405").status, 405);
    assert_eq!(client.get("/v1/jobs/feedface").expect("404").status, 404);
    assert_eq!(
        client.get("/v1/jobs/feedface/report").expect("404").status,
        404
    );

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn malformed_submissions_are_rejected_not_crashed() {
    let guard = lock();
    let store = temp_store("reject");
    // A 4 KiB body cap so the oversized case stays cheap.
    let (handle, client) = start_daemon(&store, 4096);

    for (label, body) in [
        ("not JSON at all", "ilang? never heard of it".to_string()),
        ("missing spec", "{\"netlist\":\"module m\"}".to_string()),
        (
            "missing netlist",
            "{\"spec\":{\"property\":{\"kind\":\"sni\",\"order\":1}}}".to_string(),
        ),
        (
            "spec without property",
            "{\"spec\":{},\"netlist\":\"module m\"}".to_string(),
        ),
        (
            "unknown engine",
            "{\"spec\":{\"property\":{\"kind\":\"sni\",\"order\":1},\"engine\":\"cudd\"},\"netlist\":\"x\"}"
                .to_string(),
        ),
        (
            "unparseable netlist",
            "{\"spec\":{\"property\":{\"kind\":\"sni\",\"order\":1}},\"netlist\":\"garbage\"}"
                .to_string(),
        ),
    ] {
        let response = client.post("/v1/jobs", body.as_bytes()).expect(label);
        assert_eq!(response.status, 400, "{label}: {}", response.text());
    }

    // Oversized bodies are refused before they are buffered.
    let oversized = format!("{{\"netlist\":\"{}\"}}", "x".repeat(8192));
    let response = client
        .post("/v1/jobs", oversized.as_bytes())
        .expect("oversized");
    assert_eq!(response.status, 413, "{}", response.text());

    // Nothing above may have created a job.
    let list = client.get("/v1/jobs").expect("list");
    assert_eq!(list.text(), "{\"jobs\":[]}");

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn submit_poll_fetch_and_cache_hit_on_resubmit() {
    let guard = lock();
    let store = temp_store("e2e");
    let (handle, client) = start_daemon(&store, 1 << 20);
    let netlist = Benchmark::Dom(1).netlist();

    let ack = submit(&client, Property::Sni(1), 2, &netlist);
    let id = field(&ack, "id").to_string();
    assert_eq!(id.len(), 16, "content-derived id");
    assert_eq!(ack.get("cached"), Some(&Json::Bool(false)));

    let record = wait_for(&client, &id, "done");
    let report_hash = field(&record, "report_hash").to_string();

    // The artifact: canonical bytes whose SHA-256 is the advertised hash,
    // byte-identical to what an uninterrupted in-process run produces.
    let fetched = client
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    assert_eq!(fetched.status, 200);
    let body = fetched.text();
    assert!(
        body.contains(&format!("\"schema\":\"{REPORT_SCHEMA}\"")),
        "{body}"
    );
    assert!(body.contains("\"outcome\":\"secure\""), "{body}");
    assert_eq!(sha256_hex(body.as_bytes()), report_hash);
    let reference = reference_artifact(&netlist, Property::Sni(1), 1);
    assert_eq!(body, reference.canonical_json(), "artifact bytes drifted");
    assert_eq!(report_hash, reference.hash());

    // Progress events survived on disk and paginate.
    let events = client
        .get(&format!("/v1/jobs/{id}/events?since=0"))
        .expect("events");
    assert_eq!(events.status, 200);
    let events_doc = json::parse(&events.text()).expect("events JSON");
    let next = events_doc.get("next").and_then(Json::as_u64).expect("next");
    assert!(next > 0, "{}", events.text());
    assert!(events.text().contains("\"event\":\"run-started\""));
    let tail = client
        .get(&format!("/v1/jobs/{id}/events?since={next}"))
        .expect("tail");
    assert!(tail.text().contains("\"events\":[]"), "{}", tail.text());

    // Resubmitting the identical (netlist, identity) — even at a different
    // thread count, which is not part of the identity — is a cache hit.
    for threads in [2, 7] {
        let again = submit(&client, Property::Sni(1), threads, &netlist);
        assert_eq!(field(&again, "id"), id, "t{threads}");
        assert_eq!(
            again.get("cached"),
            Some(&Json::Bool(true)),
            "t{threads}: {again:?}"
        );
    }
    // A different property is a different job.
    let other = submit(&client, Property::Ni(1), 2, &netlist);
    assert_ne!(field(&other, "id"), id);

    // Killing a finished job is a conflict, not a state change.
    let kill = client.delete(&format!("/v1/jobs/{id}")).expect("kill");
    assert_eq!(kill.status, 409, "{}", kill.text());

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn queued_jobs_kill_and_resume_deterministically() {
    let guard = lock();
    let store = temp_store("killq");
    // Bind without serving: the runner thread only starts in `run`, so the
    // submission sits in `queued` and the kill/resume transitions are
    // race-free.
    let config = DaemonConfig::new(&store);
    let daemon = Daemon::bind(&config).expect("binds");
    let manager = std::sync::Arc::clone(daemon.manager());
    let netlist = Benchmark::Dom(1).netlist();
    let spec_doc = json::parse(&spec_json(Property::Sni(1), 1)).expect("spec");
    let submitted = manager
        .submit(&spec_doc, &write_ilang(&netlist))
        .expect("submits");
    assert!(submitted.created);

    use walshcheck::daemon::JobState;
    assert_eq!(
        manager.kill(&submitted.id).expect("kills"),
        JobState::Killed
    );
    let conflict = manager.kill(&submitted.id).expect_err("double kill");
    assert_eq!(conflict.status, 409);
    assert_eq!(
        manager.resume(&submitted.id).expect("resumes"),
        JobState::Queued
    );

    // Now serve: the re-enqueued job runs to completion over HTTP.
    let addr = daemon.addr();
    let handle = std::thread::spawn(move || daemon.run().expect("serves"));
    let client = Client::new(addr.to_string());
    let record = wait_for(&client, &submitted.id, "done");
    assert!(field(&record, "report_hash").len() == 64);

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn restart_recovers_the_store_and_finishes_the_job() {
    let guard = lock();
    let store = temp_store("restart");
    let netlist = Benchmark::Dom(2).netlist();

    // Daemon A: submit and stop straight away. Depending on where the stop
    // lands the job is still queued, mid-sweep (→ interrupted, checkpoint
    // flushed), or already done — recovery must finish it in every case.
    let (handle_a, client_a) = start_daemon(&store, 1 << 20);
    let ack = submit(&client_a, Property::Sni(2), 2, &netlist);
    let id = field(&ack, "id").to_string();
    std::thread::sleep(Duration::from_millis(30));
    stop_daemon(handle_a);

    // Daemon B over the same store: queued/interrupted jobs re-enqueue and
    // the checkpoint (if any) seeds the resumed sweep.
    let (handle_b, client_b) = start_daemon(&store, 1 << 20);
    let record = wait_for(&client_b, &id, "done");
    let report_hash = field(&record, "report_hash").to_string();

    // Whatever the interruption history, the artifact is byte-identical to
    // an uninterrupted run's: resume is exact, and the report carries no
    // timing or scheduling residue.
    let fetched = client_b
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    let reference = reference_artifact(&netlist, Property::Sni(2), 1);
    assert_eq!(fetched.text(), reference.canonical_json());
    assert_eq!(report_hash, reference.hash());

    // The finished job is now cache-served across restarts too.
    let again = submit(&client_b, Property::Sni(2), 4, &netlist);
    assert_eq!(field(&again, "id"), id);
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)));

    stop_daemon(handle_b);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

/// Kill lands mid-sweep deterministically: the fault-injected stall slows
/// each combination to ~25 ms, so the DELETE always catches the job
/// `running`; the interrupted sweep flushes its checkpoint, the job parks
/// in `killed`, and `POST resume` finishes it — byte-identical to an
/// uninterrupted run.
#[cfg(feature = "fault-inject")]
#[test]
fn http_kill_mid_sweep_then_resume_is_exact() {
    let guard = lock();
    let store = temp_store("killrun");
    let (handle, client) = start_daemon(&store, 1 << 20);
    let netlist = Benchmark::Dom(2).netlist();

    let fault = FaultPlan::set("stall-ms=25");
    let ack = submit(&client, Property::Sni(2), 1, &netlist);
    let id = field(&ack, "id").to_string();
    wait_for(&client, &id, "running");
    // Let at least one batch finish so the checkpoint has a frontier.
    std::thread::sleep(Duration::from_millis(200));
    let kill = client.delete(&format!("/v1/jobs/{id}")).expect("kill");
    assert_eq!(kill.status, 202, "{}", kill.text());
    let record = wait_for(&client, &id, "killed");
    assert_eq!(record.get("report_hash"), Some(&Json::Null));
    drop(fault);

    // The interrupted sweep left a resumable checkpoint behind.
    let ck = store.join("jobs").join(&id).join("checkpoint.ck");
    assert!(ck.is_file(), "no checkpoint at {}", ck.display());

    // A killed job does not auto-resume; an explicit resume finishes it.
    let resume = client
        .post(&format!("/v1/jobs/{id}/resume"), b"")
        .expect("resume");
    assert_eq!(resume.status, 200, "{}", resume.text());
    wait_for(&client, &id, "done");
    let fetched = client
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    let reference = reference_artifact(&netlist, Property::Sni(2), 1);
    assert_eq!(fetched.text(), reference.canonical_json());
    assert!(!ck.exists(), "checkpoint survives a finished sweep");

    stop_daemon(handle);
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}

/// End-to-end across processes: `walshcheck serve` is SIGTERMed mid-sweep,
/// exits 0 after draining, and a fresh `serve` over the same store
/// auto-resumes the interrupted job to the exact uninterrupted artifact.
#[cfg(all(unix, feature = "fault-inject"))]
#[test]
fn sigterm_against_a_serving_child_drains_and_resumes() {
    use std::process::{Command, Stdio};

    let guard = lock();
    let store = temp_store("sigterm");
    let netlist = Benchmark::Dom(2).netlist();
    let store_str = store.to_str().expect("utf-8 path").to_string();
    let serve = |stalled: bool| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_walshcheck"));
        cmd.args(["serve", "--store", &store_str, "--checkpoint-every", "0"])
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        if stalled {
            cmd.env("WALSHCHECK_FAULT", "stall-ms=25");
        } else {
            cmd.env_remove("WALSHCHECK_FAULT");
        }
        cmd.spawn().expect("serve spawns")
    };
    let wait_addr = || {
        let path = store.join("daemon.addr");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(addr) = std::fs::read_to_string(&path) {
                let addr = addr.trim().to_string();
                // The previous incarnation's file is overwritten at bind;
                // accept whatever answers a health check.
                let client = Client::new(addr.clone());
                if matches!(client.get("/v1/health"), Ok(r) if r.status == 200) {
                    return client;
                }
            }
            assert!(Instant::now() < deadline, "no daemon.addr in {store_str}");
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    let mut child = serve(true);
    let client = wait_addr();
    let ack = submit(&client, Property::Sni(2), 1, &netlist);
    let id = field(&ack, "id").to_string();
    wait_for(&client, &id, "running");
    std::thread::sleep(Duration::from_millis(200));

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let status = child.wait().expect("child exits");
    assert_eq!(status.code(), Some(0), "graceful serve exit");

    // The store records the interruption durably.
    let status_text = std::fs::read_to_string(store.join("jobs").join(&id).join("status.json"))
        .expect("status.json persisted");
    assert!(
        status_text.contains("\"state\":\"interrupted\"")
            || status_text.contains("\"state\":\"queued\""),
        "{status_text}"
    );

    // A fresh daemon (no stall) auto-resumes and completes it.
    let mut child = serve(false);
    let client = wait_addr();
    let record = wait_for(&client, &id, "done");
    let fetched = client
        .get(&format!("/v1/jobs/{id}/report"))
        .expect("report");
    let reference = reference_artifact(&netlist, Property::Sni(2), 1);
    assert_eq!(fetched.text(), reference.canonical_json());
    assert_eq!(field(&record, "report_hash"), reference.hash());

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    assert_eq!(child.wait().expect("exits").code(), Some(0));
    drop(guard);
    let _ = std::fs::remove_dir_all(&store);
}
