//! Glitch-extended (robust) probing model: engine vs oracle agreement and
//! the classical register-protection facts.

use walshcheck::prelude::*;
use walshcheck_core::exhaustive::exhaustive_check;
use walshcheck_core::sites::SiteOptions;
use walshcheck_gadgets::isw::isw_and;

fn glitch_opts() -> VerifyOptions {
    VerifyOptions::default().with_probe_model(ProbeModel::Glitch)
}

fn run(n: &Netlist, prop: Property, opts: VerifyOptions) -> Verdict {
    Session::new(n)
        .expect("valid")
        .options(opts)
        .property(prop)
        .run()
}

fn glitch_sites() -> SiteOptions {
    SiteOptions {
        probe_model: ProbeModel::Glitch,
        ..SiteOptions::default()
    }
}

#[test]
fn ti_is_glitch_robust_first_order() {
    // Threshold implementations were designed exactly for this: 1-probing
    // security in the presence of glitches, thanks to non-completeness.
    let n = Benchmark::Ti1.netlist();
    let v = run(&n, Property::Probing(1), glitch_opts());
    assert!(v.secure, "{v}");
    let o = exhaustive_check(&n, Property::Probing(1), &glitch_sites()).expect("small");
    assert!(o.secure);
}

#[test]
fn dom_registers_give_glitch_robust_sni_at_order_1() {
    // The register after resharing stops glitch propagation; DOM-1 stays
    // 1-SNI under glitch-extended probes.
    let n = Benchmark::Dom(1).netlist();
    let v = run(&n, Property::Sni(1), glitch_opts());
    let o = exhaustive_check(&n, Property::Sni(1), &glitch_sites()).expect("small");
    assert_eq!(v.secure, o.secure);
    assert!(v.secure, "{v}");
}

#[test]
fn isw_without_registers_fails_glitch_robust_sni() {
    // The ISW output share accumulates (r ⊕ a_i b_j) ⊕ a_j b_i in one
    // combinational cone: a glitch-extended probe on the output sees the
    // unmasked products — not SNI (and not even 1-probing secure).
    let n = isw_and(1);
    let v = run(&n, Property::Sni(1), glitch_opts());
    let o = exhaustive_check(&n, Property::Sni(1), &glitch_sites()).expect("small");
    assert_eq!(v.secure, o.secure);
    assert!(!v.secure, "combinational ISW must fail under glitches");
}

#[test]
fn engines_agree_with_oracle_under_glitches() {
    for (name, n, d) in [
        ("ti-1", Benchmark::Ti1.netlist(), 1),
        ("dom-1", Benchmark::Dom(1).netlist(), 1),
        ("isw-1", isw_and(1), 1),
        ("trichina-1", Benchmark::Trichina1.netlist(), 1),
    ] {
        for prop in [Property::Probing(d), Property::Ni(d), Property::Sni(d)] {
            let oracle = exhaustive_check(&n, prop, &glitch_sites())
                .expect("small")
                .secure;
            for engine in [
                EngineKind::Lil,
                EngineKind::Map,
                EngineKind::Mapi,
                EngineKind::Fujita,
            ] {
                for mode in [CheckMode::Joint, CheckMode::RowWise] {
                    let mut opts = glitch_opts();
                    opts.engine = engine;
                    opts.mode = mode;
                    let got = run(&n, prop, opts).secure;
                    assert_eq!(got, oracle, "{name} {prop:?} {engine} {mode:?} (glitch)");
                }
            }
        }
    }
}

#[test]
fn glitch_model_is_stricter_than_standard() {
    // Any gadget secure under glitches is secure in the standard model
    // (the observation sets only shrink).
    for n in [
        Benchmark::Ti1.netlist(),
        Benchmark::Dom(1).netlist(),
        isw_and(1),
    ] {
        for prop in [Property::Probing(1), Property::Sni(1)] {
            let glitch = run(&n, prop, glitch_opts()).secure;
            let standard = run(&n, prop, VerifyOptions::default()).secure;
            if glitch {
                assert!(
                    standard,
                    "glitch-secure but standard-insecure is impossible"
                );
            }
        }
    }
}
