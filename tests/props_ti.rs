//! Property test for the generic TI generator: every randomly generated
//! quadratic sharing must compute its specification, be first-order probing
//! secure in the glitch-extended model (the TI theorem), and agree with the
//! exhaustive oracle across engines.

use proptest::prelude::*;

use walshcheck::prelude::*;
use walshcheck_core::exhaustive::exhaustive_check;
use walshcheck_core::sites::SiteOptions;
use walshcheck_dd::anf::Anf;
use walshcheck_gadgets::test_util::check_gadget_function_multi;
use walshcheck_gadgets::ti_general::{ti_share, QuadraticSpec};

/// Monomial masks over 3 variables with degree ≤ 2.
const MONOMIALS: [u128; 7] = [0b000, 0b001, 0b010, 0b100, 0b011, 0b101, 0b110];

fn spec_strategy() -> impl Strategy<Value = QuadraticSpec> {
    proptest::collection::vec(
        proptest::collection::vec(0usize..MONOMIALS.len(), 0..5),
        1..3,
    )
    .prop_map(|outputs| QuadraticSpec {
        name: "random-quadratic".into(),
        num_inputs: 3,
        outputs: outputs
            .into_iter()
            .map(|idxs| Anf::from_monomials(idxs.into_iter().map(|i| MONOMIALS[i])))
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_quadratic_ti_is_correct_and_first_order_secure(spec in spec_strategy()) {
        let netlist = ti_share(&spec).expect("degree ≤ 2 by construction");
        // 1. Functional correctness against the ANF spec.
        check_gadget_function_multi(&netlist, &|secrets, oidx| {
            let mut a = 0u128;
            for (i, &b) in secrets.iter().enumerate() {
                if b {
                    a |= 1 << i;
                }
            }
            spec.outputs[oidx].eval(a)
        });
        // 2. The TI theorem: non-complete sharings of uniform inputs are
        //    first-order probing secure, even under glitches.
        for model in [ProbeModel::Standard, ProbeModel::Glitch] {
            let opts = VerifyOptions::default().with_probe_model(model);
            let v = Session::new(&netlist)
                .expect("valid")
                .options(opts)
                .property(Property::Probing(1))
                .run();
            prop_assert!(v.secure, "TI theorem violated under {model:?}: {v}");
            let sites = SiteOptions { probe_model: model, ..SiteOptions::default() };
            let oracle = exhaustive_check(&netlist, Property::Probing(1), &sites)
                .expect("9 inputs");
            prop_assert!(oracle.secure, "oracle disagrees with the TI theorem");
        }
        // 3. Engine agreement on NI/SNI (whatever the verdict is).
        for prop in [Property::Ni(1), Property::Sni(1)] {
            let oracle = exhaustive_check(&netlist, prop, &SiteOptions::default())
                .expect("9 inputs")
                .secure;
            for engine in [EngineKind::Lil, EngineKind::Mapi] {
                let got = Session::new(&netlist)
                    .expect("valid")
                    .engine(engine)
                    .property(prop)
                    .run()
                    .secure;
                prop_assert_eq!(got, oracle, "{:?} {}", prop, engine);
            }
        }
    }
}
