//! Integration tests for the resilient-execution layer: three-valued
//! outcomes, resource budgets, quarantine determinism, and checkpoint /
//! resume identity. These drive the public `Session` API end to end the
//! way the CLI does, but assert on the typed verdict rather than text.

use std::time::Duration;

use walshcheck::prelude::*;

fn bench(name: &str) -> Netlist {
    Benchmark::from_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .netlist()
}

const ENGINES: [EngineKind; 4] = [
    EngineKind::Lil,
    EngineKind::Map,
    EngineKind::Mapi,
    EngineKind::Fujita,
];

fn tmp_checkpoint(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("walshcheck-resilience-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("{tag}.ck"));
    let _ = std::fs::remove_file(&path);
    path
}

/// A found witness is definitive: even when the wall clock expires during
/// the same sweep, the verdict is `Violated` and `timed_out` is cleared
/// (one leaking tuple disproves the property regardless of coverage).
///
/// Escalating limits walk through the race deterministically: runs whose
/// clock expires before the witness is reached are `Inconclusive(Timeout)`
/// — never `Secure`, never a panic — and the final generous limit always
/// reaches the violating combination.
#[test]
fn timeout_with_witness_is_violated() {
    let netlist = bench("ti-1");
    for micros in [50, 200, 1_000, 10_000, 10_000_000] {
        let verdict = Session::new(&netlist)
            .expect("valid netlist")
            .property(Property::Sni(1))
            .time_limit(Duration::from_micros(micros))
            .run();
        match verdict.outcome {
            Outcome::Violated => {
                assert!(
                    verdict.witness.is_some(),
                    "violated verdict carries evidence"
                );
                assert!(
                    !verdict.stats.timed_out,
                    "a witness outranks the timeout: timed_out must be cleared"
                );
                assert!(!verdict.secure);
                return;
            }
            Outcome::Inconclusive(IncompleteReason::Timeout) => {
                // Expired before the witness; compat bool stays true but
                // the outcome says nothing was proved.
                assert!(verdict.witness.is_none());
                assert!(verdict.secure, "compat bool: no witness found");
                continue;
            }
            other => panic!("unexpected outcome {other:?} at {micros}us"),
        }
    }
    panic!("ti-1 1-SNI violation not found even with a 10s budget");
}

/// `time_limit(Duration::ZERO)` across all four engines and both thread
/// counts: the verdict must be `Inconclusive(Timeout)`, never `Secure` —
/// nothing was swept, so nothing was proved.
#[test]
fn zero_time_limit_is_inconclusive_never_secure() {
    let netlist = bench("dom-2");
    for engine in ENGINES {
        for threads in [1usize, 4] {
            let verdict = Session::new(&netlist)
                .expect("valid netlist")
                .property(Property::Sni(2))
                .engine(engine)
                .threads(threads)
                .time_limit(Duration::ZERO)
                .run();
            assert_eq!(
                verdict.outcome,
                Outcome::Inconclusive(IncompleteReason::Timeout),
                "{engine:?}/{threads}t: a zero budget cannot prove anything"
            );
            assert!(verdict.witness.is_none(), "{engine:?}/{threads}t");
            assert!(verdict.stats.timed_out, "{engine:?}/{threads}t");
            assert!(
                std::panic::catch_unwind(|| verdict.expect_secure()).is_err(),
                "{engine:?}/{threads}t: expect_secure must reject an inconclusive run"
            );
        }
    }
}

/// A starvation-level node budget quarantines combinations instead of
/// aborting: the outcome degrades to `Inconclusive(NodeBudget)` (never
/// `Secure`), and the quarantine list — indices, tuples, reasons — is
/// identical at 1 and 4 threads for every engine, because the budget is
/// charged against a deterministic per-tuple size estimate rather than
/// shared arena state.
#[test]
fn node_budget_quarantine_is_deterministic_across_threads() {
    let netlist = bench("dom-2");
    for engine in ENGINES {
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let verdict = Session::new(&netlist)
                .expect("valid netlist")
                .property(Property::Sni(2))
                .engine(engine)
                .threads(threads)
                .node_budget(1)
                .run();
            assert_eq!(
                verdict.outcome,
                Outcome::Inconclusive(IncompleteReason::NodeBudget),
                "{engine:?}/{threads}t"
            );
            assert!(verdict.witness.is_none(), "{engine:?}/{threads}t");
            assert!(
                !verdict.skipped.is_empty(),
                "{engine:?}/{threads}t: a 1-node budget must quarantine"
            );
            assert!(verdict
                .skipped
                .iter()
                .all(|s| s.reason == IncompleteReason::NodeBudget));
            assert_eq!(
                verdict.stats.skipped,
                verdict.skipped.len() as u64,
                "{engine:?}/{threads}t: counter matches the list"
            );
            runs.push(verdict);
        }
        let (one, four) = (&runs[0], &runs[1]);
        assert_eq!(
            one.skipped, four.skipped,
            "{engine:?}: quarantine list must not depend on the thread count"
        );
        assert_eq!(
            one.stats.combinations, four.stats.combinations,
            "{engine:?}"
        );
        assert_eq!(one.stats.pruned, four.stats.pruned, "{engine:?}");
    }
}

/// Checkpoint → interrupt → resume reproduces the uninterrupted verdict
/// exactly — outcome, witness, quarantine list, and the combination /
/// prune counters — at both 1 and 4 threads. The interrupted leg uses a
/// wall-clock limit as the "kill": a timed-out run leaves a valid
/// checkpoint behind (the final write runs even on early exit), and the
/// resumed run sweeps only the remainder.
#[test]
fn checkpoint_resume_reproduces_the_uninterrupted_verdict() {
    let netlist = bench("dom-2");
    let baseline = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .run();
    assert_eq!(baseline.outcome, Outcome::Secure);

    for threads in [1usize, 4] {
        for (tag, limit) in [("zero", Duration::ZERO), ("5ms", Duration::from_millis(5))] {
            let path = tmp_checkpoint(&format!("dom2-{threads}t-{tag}"));
            let interrupted = Session::new(&netlist)
                .expect("valid netlist")
                .property(Property::Sni(2))
                .threads(threads)
                .time_limit(limit)
                .checkpoint_to(&path, Duration::ZERO)
                .run();
            assert!(
                path.is_file(),
                "{threads}t/{tag}: a checkpoint survives the interruption"
            );
            // The interrupted leg either timed out (usual) or finished
            // inside the budget (possible for the 5ms leg on a fast
            // machine); both leave a resumable file.
            assert_ne!(interrupted.outcome, Outcome::Violated);

            let resumed = Session::new(&netlist)
                .expect("valid netlist")
                .property(Property::Sni(2))
                .threads(threads)
                .resume_from(&path)
                .expect("fingerprint matches")
                .run();
            assert_eq!(resumed.outcome, baseline.outcome, "{threads}t/{tag}");
            assert_eq!(resumed.secure, baseline.secure, "{threads}t/{tag}");
            assert_eq!(resumed.witness, baseline.witness, "{threads}t/{tag}");
            assert_eq!(resumed.skipped, baseline.skipped, "{threads}t/{tag}");
            assert_eq!(
                resumed.stats.combinations, baseline.stats.combinations,
                "{threads}t/{tag}: carried + fresh counters add up to the full sweep"
            );
            assert_eq!(
                resumed.stats.pruned, baseline.stats.pruned,
                "{threads}t/{tag}"
            );
        }
    }
}

/// The rescue pass resolves every starvation quarantine on a small gadget:
/// a 1-node budget plus `--rescue` reproduces the unconstrained verdict
/// exactly — outcome, witness, empty quarantine list — at both 1 and 4
/// threads, and the recovery report itself is thread-count independent
/// (the ladder is a pure function of the options, and the pass is serial).
#[test]
fn rescue_reproduces_the_unconstrained_verdict() {
    let netlist = bench("dom-2");
    let baseline = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .run();
    assert_eq!(baseline.outcome, Outcome::Secure);
    assert!(baseline.recovery.is_none(), "no rescue requested");

    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let verdict = Session::new(&netlist)
            .expect("valid netlist")
            .property(Property::Sni(2))
            .threads(threads)
            .node_budget(1)
            .rescue(true)
            .run();
        assert_eq!(verdict.outcome, baseline.outcome, "{threads}t");
        assert_eq!(verdict.witness, baseline.witness, "{threads}t");
        assert!(
            verdict.skipped.is_empty(),
            "{threads}t: every quarantine must be resolved"
        );
        assert_eq!(verdict.stats.skipped, 0, "{threads}t");
        let recovery = verdict.recovery.expect("rescue ran");
        assert!(recovery.attempted > 0, "{threads}t");
        assert_eq!(recovery.unresolved, 0, "{threads}t");
        assert_eq!(recovery.resolved, recovery.attempted, "{threads}t");
        reports.push(recovery);
    }
    assert_eq!(
        reports[0], reports[1],
        "the recovery report must not depend on the thread count"
    );
}

/// A starved run on an insecure gadget still reports `Violated` with a
/// witness byte-identical to the unconstrained run's, whether the sweep
/// reached the violating tuple itself (its estimate fits even a 1-node
/// budget) or the rescue pass re-derived it. The rescue-found-violation
/// path specifically is pinned down in `tests/fault_inject.rs`, where the
/// quarantine of the violating index is forced.
#[test]
fn starved_violation_keeps_the_identical_witness() {
    let netlist = bench("ti-1");
    let baseline = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(1))
        .run();
    assert_eq!(baseline.outcome, Outcome::Violated);
    let witness = baseline.witness.expect("violated verdict has a witness");

    for threads in [1usize, 4] {
        let verdict = Session::new(&netlist)
            .expect("valid netlist")
            .property(Property::Sni(1))
            .threads(threads)
            .node_budget(1)
            .rescue(true)
            .run();
        assert_eq!(verdict.outcome, Outcome::Violated, "{threads}t");
        assert_eq!(
            verdict.witness.as_ref(),
            Some(&witness),
            "{threads}t: witness must be byte-identical"
        );
        if let Some(recovery) = &verdict.recovery {
            assert_eq!(
                recovery.attempted,
                recovery.combinations.len(),
                "{threads}t"
            );
        }
    }
}

/// With rescue disabled the quarantines stay: the pre-rescue behavior —
/// `Inconclusive(NodeBudget)`, populated skip list — is preserved, and no
/// recovery block is attached.
#[test]
fn no_rescue_preserves_the_inconclusive_verdict() {
    let netlist = bench("dom-2");
    let verdict = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .node_budget(1)
        .rescue(false)
        .run();
    assert_eq!(
        verdict.outcome,
        Outcome::Inconclusive(IncompleteReason::NodeBudget)
    );
    assert!(!verdict.skipped.is_empty());
    assert!(verdict.recovery.is_none());
}

/// Quarantines carried in a checkpoint are rescued on resume: a budgeted
/// no-rescue run leaves its quarantines in the file, and resuming that file
/// with rescue enabled heals all of them and upgrades the verdict.
#[test]
fn resume_rescues_carried_quarantines() {
    let netlist = bench("dom-2");
    let path = tmp_checkpoint("dom2-carried-rescue");
    let first = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .node_budget(1)
        .checkpoint_to(&path, Duration::ZERO)
        .run();
    assert_eq!(
        first.outcome,
        Outcome::Inconclusive(IncompleteReason::NodeBudget)
    );
    let quarantined = first.skipped.len();

    let resumed = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .node_budget(1)
        .rescue(true)
        .resume_from(&path)
        .expect("fingerprint matches")
        .run();
    assert_eq!(resumed.outcome, Outcome::Secure);
    assert!(resumed.skipped.is_empty());
    let recovery = resumed.recovery.expect("rescue ran");
    assert_eq!(recovery.attempted, quarantined);
    assert_eq!(recovery.unresolved, 0);
}

/// Resuming a checkpoint written *mid-rescue* does not replay healed
/// combinations and still converges to the same verdict. The mid-rescue
/// state is reconstructed by surgery on a completed checkpoint: one entry
/// is moved from the `rescued` array back into `skipped`, exactly the shape
/// a kill between two rescue resolutions leaves behind.
#[test]
fn resume_from_mid_rescue_checkpoint_converges() {
    let netlist = bench("dom-2");
    let path = tmp_checkpoint("dom2-mid-rescue");
    let direct = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .node_budget(1)
        .rescue(true)
        .checkpoint_to(&path, Duration::ZERO)
        .run();
    assert_eq!(direct.outcome, Outcome::Secure);
    let attempted = direct.recovery.as_ref().expect("rescue ran").attempted;

    // Move the first rescued entry back into the skipped list.
    let text = std::fs::read_to_string(&path).expect("checkpoint readable");
    let rs = text.find("\"rescued\":[").expect("rescued array") + "\"rescued\":[".len();
    let entry_end = rs + text[rs..].find('}').expect("rescued entry") + 1;
    let entry = text[rs..entry_end].to_string();
    let mut tail = text[entry_end..].to_string();
    if tail.starts_with(',') {
        tail.remove(0);
    }
    let without = format!("{}{}", &text[..rs], tail);
    let ss = without.find("\"skipped\":[").expect("skipped array") + "\"skipped\":[".len();
    let insert = if without[ss..].starts_with(']') {
        entry
    } else {
        format!("{entry},")
    };
    let doctored = format!("{}{}{}", &without[..ss], insert, &without[ss..]);
    std::fs::write(&path, doctored).expect("checkpoint writable");

    let resumed = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .node_budget(1)
        .rescue(true)
        .resume_from(&path)
        .expect("fingerprint matches")
        .run();
    assert_eq!(resumed.outcome, direct.outcome);
    assert_eq!(resumed.witness, direct.witness);
    assert_eq!(resumed.skipped, direct.skipped);
    let recovery = resumed.recovery.expect("rescue ran");
    assert_eq!(recovery.attempted, attempted, "carried + replayed add up");
    assert_eq!(recovery.unresolved, 0);
}

/// Resuming a run that already found its violation re-derives the *same*
/// minimal witness from the recorded candidate index (witnesses are not
/// serialized; the resume path recomputes them deterministically).
#[test]
fn resume_recomputes_an_identical_witness() {
    let netlist = bench("ti-1");
    let path = tmp_checkpoint("ti1-witness");
    let first = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(1))
        .checkpoint_to(&path, Duration::ZERO)
        .run();
    assert_eq!(first.outcome, Outcome::Violated);
    let witness = first.witness.expect("violated verdict has a witness");

    let resumed = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(1))
        .resume_from(&path)
        .expect("fingerprint matches")
        .run();
    assert_eq!(resumed.outcome, Outcome::Violated);
    assert_eq!(
        resumed.witness.as_ref(),
        Some(&witness),
        "the recomputed witness is byte-identical to the original"
    );
}

/// Resuming against a different configuration is rejected up front: the
/// fingerprint covers the netlist, the property and the
/// enumeration-relevant options.
#[test]
fn resume_rejects_mismatched_configurations() {
    let netlist = bench("dom-2");
    let path = tmp_checkpoint("dom2-mismatch");
    let _ = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .checkpoint_to(&path, Duration::ZERO)
        .run();

    // Different property.
    let err = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Ni(2))
        .resume_from(&path)
        .expect_err("property is part of the fingerprint");
    assert!(err.to_string().contains("fingerprint mismatch"), "{err}");

    // Different netlist.
    let other = bench("dom-1");
    let err = Session::new(&other)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .resume_from(&path)
        .expect_err("netlist is part of the fingerprint");
    assert!(err.to_string().contains("fingerprint mismatch"), "{err}");

    // Resuming before setting a property is a configuration error.
    let err = Session::new(&netlist)
        .expect("valid netlist")
        .resume_from(&path)
        .expect_err("property must be set first");
    assert!(err.to_string().contains("property"), "{err}");
}

/// `Session::search_witnesses` honors the configured limits and reports
/// how the search ended instead of silently truncating.
#[test]
fn search_witnesses_honors_limits_and_reports_completeness() {
    // A zero wall-clock budget: no witnesses, and `complete == false`
    // says the empty list proves nothing.
    let dom2 = bench("dom-2");
    let search = Session::new(&dom2)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .time_limit(Duration::ZERO)
        .search_witnesses(5);
    assert!(search.witnesses.is_empty());
    assert!(search.stats.timed_out);
    assert!(
        !search.complete,
        "a timed-out search must not claim completeness"
    );

    // A starvation node budget: quarantines recorded, not complete.
    let search = Session::new(&dom2)
        .expect("valid netlist")
        .property(Property::Sni(2))
        .node_budget(1)
        .search_witnesses(5);
    assert!(!search.skipped.is_empty());
    assert!(!search.complete);

    // Unconstrained on an insecure gadget: witnesses found, and the sweep
    // ran to the end of the space.
    let ti1 = bench("ti-1");
    let search = Session::new(&ti1)
        .expect("valid netlist")
        .property(Property::Sni(1))
        .search_witnesses(1_000);
    assert!(!search.witnesses.is_empty());
    assert!(search.complete, "space exhausted below the limit");
    assert!(search.skipped.is_empty());
    assert!(!search.stats.timed_out);

    // The bare convenience wrapper returns the same witnesses.
    let bare = Session::new(&ti1)
        .expect("valid netlist")
        .property(Property::Sni(1))
        .find_witnesses(1_000);
    assert_eq!(bare, search.witnesses);
}
