//! Fault-injection tests (compiled only with `--features fault-inject`).
//!
//! The `WALSHCHECK_FAULT` environment variable plants deterministic faults
//! at exact points of the enumeration (see `walshcheck_core::fault`); these
//! tests prove the isolation boundaries hold: an injected panic or budget
//! blow-up is quarantined, a lost worker degrades the verdict — and nothing
//! ever aborts the process or falsely reports `Secure`.
//!
//! The directives live in process-global environment state, so every test
//! serializes on one lock and clears the variable before releasing it.

#![cfg(feature = "fault-inject")]

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use walshcheck::prelude::*;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Takes the environment lock (surviving poisoning: a failed sibling test
/// must not cascade) and installs the given fault plan.
fn plan(directives: &str) -> MutexGuard<'static, ()> {
    let guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    std::env::set_var("WALSHCHECK_FAULT", directives);
    guard
}

fn clear() {
    std::env::remove_var("WALSHCHECK_FAULT");
}

fn dom2_session() -> Session {
    let netlist = Benchmark::from_name("dom-2").expect("benchmark").netlist();
    Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
}

#[test]
fn injected_panic_is_quarantined_not_fatal() {
    let guard = plan("panic-at=2");
    let verdict = dom2_session().run();
    clear();
    drop(guard);

    assert_eq!(
        verdict.outcome,
        Outcome::Inconclusive(IncompleteReason::WorkerFailure)
    );
    assert!(verdict.witness.is_none());
    let quarantined: Vec<u64> = verdict.skipped.iter().map(|s| s.index).collect();
    assert_eq!(quarantined, vec![2], "exactly the faulted combination");
    assert_eq!(verdict.skipped[0].reason, IncompleteReason::WorkerFailure);
    assert!(
        verdict.stats.combinations > 1,
        "siblings of the faulted combination were still checked"
    );
    assert!(std::panic::catch_unwind(|| verdict.expect_secure()).is_err());
}

#[test]
fn injected_budget_exhaustion_reads_as_node_budget() {
    let guard = plan("budget-at=3");
    let verdict = dom2_session().run();
    clear();
    drop(guard);

    assert_eq!(
        verdict.outcome,
        Outcome::Inconclusive(IncompleteReason::NodeBudget)
    );
    let quarantined: Vec<_> = verdict
        .skipped
        .iter()
        .map(|s| (s.index, s.reason))
        .collect();
    assert_eq!(quarantined, vec![(3, IncompleteReason::NodeBudget)]);
}

#[test]
fn lost_worker_degrades_but_does_not_hang() {
    // Worker 1 dies at startup, outside the per-combination boundary; the
    // scheduler must notice the loss, keep worker 0 sweeping, and degrade
    // the verdict rather than deadlock on the dead worker's batches.
    let guard = plan("lose-worker=1");
    let verdict = dom2_session().threads(2).run();
    clear();
    drop(guard);

    assert!(verdict.stats.worker_failures >= 1, "the loss is accounted");
    assert_eq!(
        verdict.outcome,
        Outcome::Inconclusive(IncompleteReason::WorkerFailure)
    );
    assert!(verdict.witness.is_none());
}

#[test]
fn rescue_heals_an_injected_panic() {
    // The sweep quarantines the faulted combination; the rescue pass
    // re-checks it *outside* the sweep-fault boundary (sweep directives do
    // not fire on rescue attempts), so the very first ladder rung — a plain
    // retry, since no node budget was configured — comes back clean and the
    // verdict upgrades to `Secure`.
    let guard = plan("panic-at=2");
    let verdict = dom2_session().rescue(true).run();
    clear();
    drop(guard);

    assert_eq!(verdict.outcome, Outcome::Secure);
    assert!(verdict.skipped.is_empty());
    let recovery = verdict.recovery.expect("rescue ran");
    assert_eq!(recovery.attempted, 1);
    assert_eq!(recovery.unresolved, 0);
    let rec = &recovery.combinations[0];
    assert_eq!(rec.index, 2);
    assert_eq!(rec.reason, IncompleteReason::WorkerFailure);
    assert_eq!(rec.resolution, RescueResolution::Clean);
    assert_eq!(rec.attempts.len(), 1, "a clean retry ends the ladder");
    assert_eq!(rec.attempts[0].rung, RescueRung::Budget);
    assert_eq!(rec.attempts[0].node_budget, None);
    assert_eq!(rec.attempts[0].outcome, RescueAttemptOutcome::Clean);
}

#[test]
fn persistent_rescue_panic_exhausts_the_ladder() {
    // `rescue-panic-at` fires on *every* rescue attempt for the index, so
    // the full ladder (plain retry, sift, two engine fallbacks off MAPI)
    // runs and fails; the quarantine survives with its original reason.
    let guard = plan("panic-at=2,rescue-panic-at=2");
    let verdict = dom2_session().rescue(true).run();
    clear();
    drop(guard);

    assert_eq!(
        verdict.outcome,
        Outcome::Inconclusive(IncompleteReason::WorkerFailure)
    );
    let quarantined: Vec<u64> = verdict.skipped.iter().map(|s| s.index).collect();
    assert_eq!(quarantined, vec![2]);
    let recovery = verdict.recovery.expect("rescue ran");
    assert_eq!(recovery.attempted, 1);
    assert_eq!(recovery.unresolved, 1);
    let rec = &recovery.combinations[0];
    assert_eq!(rec.resolution, RescueResolution::Unresolved);
    assert_eq!(rec.attempts.len(), 4, "the whole ladder was walked");
    assert!(rec
        .attempts
        .iter()
        .all(|a| a.outcome == RescueAttemptOutcome::Panicked));
}

#[test]
fn persistent_rescue_budget_failure_stays_node_budget() {
    let guard = plan("budget-at=3,rescue-budget-at=3");
    let verdict = dom2_session().rescue(true).run();
    clear();
    drop(guard);

    assert_eq!(
        verdict.outcome,
        Outcome::Inconclusive(IncompleteReason::NodeBudget)
    );
    let recovery = verdict.recovery.expect("rescue ran");
    assert_eq!(recovery.unresolved, 1);
    let rec = &recovery.combinations[0];
    assert_eq!(rec.index, 3);
    assert_eq!(rec.resolution, RescueResolution::Unresolved);
    assert!(rec
        .attempts
        .iter()
        .all(|a| a.outcome == RescueAttemptOutcome::NodeBudget));
}

#[test]
fn rescue_rederives_a_quarantined_violation() {
    // Force the quarantine of the *violating* combination itself: the
    // rescue pass must re-derive the violation and the final witness must
    // be byte-identical to the unconstrained run's (recomputed with the
    // run's own engine, no budget).
    let netlist = Benchmark::from_name("ti-1").expect("benchmark").netlist();
    let guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    clear();

    let (obs, rx) = ChannelObserver::new();
    let baseline = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(1))
        .threads(1)
        .observer(Arc::new(obs))
        .run();
    assert_eq!(baseline.outcome, Outcome::Violated);
    let witness = baseline.witness.clone().expect("witness");
    let index = rx
        .try_iter()
        .find_map(|e| match e {
            ProgressEvent::ViolationFound { index, .. } => Some(index),
            _ => None,
        })
        .expect("violation event observed");

    std::env::set_var("WALSHCHECK_FAULT", format!("budget-at={index}"));
    let verdict = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(1))
        .rescue(true)
        .run();
    clear();
    drop(guard);

    assert_eq!(verdict.outcome, Outcome::Violated);
    assert_eq!(verdict.witness, Some(witness), "witness is byte-identical");
    let recovery = verdict.recovery.expect("rescue ran");
    assert!(
        recovery
            .combinations
            .iter()
            .any(|c| c.index == index && c.resolution == RescueResolution::Violated),
        "the violation was re-derived by the rescue pass: {recovery:?}"
    );
}

#[test]
fn faults_on_an_insecure_gadget_cannot_mask_a_witness() {
    // Quarantining combination 0 must not stop the sweep from finding a
    // violation elsewhere — and the witness, once found, is definitive.
    let netlist = Benchmark::from_name("ti-1").expect("benchmark").netlist();
    let guard = plan("panic-at=0");
    let verdict = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(1))
        .run();
    clear();
    drop(guard);

    assert_eq!(verdict.outcome, Outcome::Violated);
    assert!(verdict.witness.is_some());
    assert!(!verdict.secure);
}
