//! Fault-injection tests (compiled only with `--features fault-inject`).
//!
//! The `WALSHCHECK_FAULT` environment variable plants deterministic faults
//! at exact points of the enumeration (see `walshcheck_core::fault`); these
//! tests prove the isolation boundaries hold: an injected panic or budget
//! blow-up is quarantined, a lost worker degrades the verdict — and nothing
//! ever aborts the process or falsely reports `Secure`.
//!
//! The directives live in process-global environment state, so every test
//! serializes on one lock and clears the variable before releasing it.

#![cfg(feature = "fault-inject")]

use std::sync::{Mutex, MutexGuard, PoisonError};

use walshcheck::prelude::*;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Takes the environment lock (surviving poisoning: a failed sibling test
/// must not cascade) and installs the given fault plan.
fn plan(directives: &str) -> MutexGuard<'static, ()> {
    let guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    std::env::set_var("WALSHCHECK_FAULT", directives);
    guard
}

fn clear() {
    std::env::remove_var("WALSHCHECK_FAULT");
}

fn dom2_session() -> Session {
    let netlist = Benchmark::from_name("dom-2").expect("benchmark").netlist();
    Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(2))
}

#[test]
fn injected_panic_is_quarantined_not_fatal() {
    let guard = plan("panic-at=2");
    let verdict = dom2_session().run();
    clear();
    drop(guard);

    assert_eq!(
        verdict.outcome,
        Outcome::Inconclusive(IncompleteReason::WorkerFailure)
    );
    assert!(verdict.witness.is_none());
    let quarantined: Vec<u64> = verdict.skipped.iter().map(|s| s.index).collect();
    assert_eq!(quarantined, vec![2], "exactly the faulted combination");
    assert_eq!(verdict.skipped[0].reason, IncompleteReason::WorkerFailure);
    assert!(
        verdict.stats.combinations > 1,
        "siblings of the faulted combination were still checked"
    );
    assert!(std::panic::catch_unwind(|| verdict.expect_secure()).is_err());
}

#[test]
fn injected_budget_exhaustion_reads_as_node_budget() {
    let guard = plan("budget-at=3");
    let verdict = dom2_session().run();
    clear();
    drop(guard);

    assert_eq!(
        verdict.outcome,
        Outcome::Inconclusive(IncompleteReason::NodeBudget)
    );
    let quarantined: Vec<_> = verdict
        .skipped
        .iter()
        .map(|s| (s.index, s.reason))
        .collect();
    assert_eq!(quarantined, vec![(3, IncompleteReason::NodeBudget)]);
}

#[test]
fn lost_worker_degrades_but_does_not_hang() {
    // Worker 1 dies at startup, outside the per-combination boundary; the
    // scheduler must notice the loss, keep worker 0 sweeping, and degrade
    // the verdict rather than deadlock on the dead worker's batches.
    let guard = plan("lose-worker=1");
    let verdict = dom2_session().threads(2).run();
    clear();
    drop(guard);

    assert!(verdict.stats.worker_failures >= 1, "the loss is accounted");
    assert_eq!(
        verdict.outcome,
        Outcome::Inconclusive(IncompleteReason::WorkerFailure)
    );
    assert!(verdict.witness.is_none());
}

#[test]
fn faults_on_an_insecure_gadget_cannot_mask_a_witness() {
    // Quarantining combination 0 must not stop the sweep from finding a
    // violation elsewhere — and the witness, once found, is definitive.
    let netlist = Benchmark::from_name("ti-1").expect("benchmark").netlist();
    let guard = plan("panic-at=0");
    let verdict = Session::new(&netlist)
        .expect("valid netlist")
        .property(Property::Sni(1))
        .run();
    clear();
    drop(guard);

    assert_eq!(verdict.outcome, Outcome::Violated);
    assert!(verdict.witness.is_some());
    assert!(!verdict.secure);
}
