//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors a minimal re-implementation of the API subset its
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, and `Bencher::iter`.
//!
//! Measurement model: after one warm-up call, each benchmark runs
//! `sample_size` samples and reports the minimum, median and mean sample
//! time on stdout. No statistical analysis, plotting, or baseline storage —
//! the `report` binary of `walshcheck-bench` covers the paper-grade numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter display value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId { id: s.into() }
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `sample_size` timed calls of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<60} min {min:>12.4?}  median {median:>12.4?}  mean {mean:>12.4?}  ({} samples)",
        samples.len()
    );
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", "p").id, "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
