//! Test configuration and the deterministic RNG driving value generation.

/// Per-test configuration (only the `cases` knob is supported).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 96 keeps the numeric-heavy
        // verification suites fast while still exploring widely.
        ProptestConfig { cases: 96 }
    }
}

/// SplitMix64 generator, seeded from the test name so every run of a test
/// explores the same deterministic case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform value in `0..n` (`n > 0`; modulo bias is irrelevant for the
    /// small ranges tests draw from).
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        self.next_u128() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::from_name("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
