//! Value-generation strategies: the composable core of the shim.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of test values.
///
/// Unlike the real proptest (where a strategy produces a shrinkable value
/// tree), a shim strategy simply draws a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// recursive positions and returns the composite strategy. Nesting is
    /// bounded by `depth`; `_size` and `_branch` (sizing hints in the real
    /// API) are accepted for compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so expected size stays
            // bounded even though each level recurses.
            strat = one_of(vec![leaf.clone(), f(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (the engine of `prop_oneof!`).
pub fn one_of<T>(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { choices }
}

/// See [`one_of`].
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u128) as usize;
        self.choices[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // start < end makes the wrapping difference fit the
                    // unsigned type of the same width.
                    let span = self.end.wrapping_sub(self.start) as $wide as u128;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*
    };
}

int_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),* $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// String-pattern strategies: `"[ -~]{0,300}" in ...` draws strings
/// matching a small regex subset — sequences of atoms (literal characters,
/// escapes, `[...]` classes with ranges) each optionally repeated by
/// `{m}` / `{m,n}` / `*` / `+` / `?`. Alternation and grouping are not
/// supported (the real proptest compiles full regexes; the shim covers
/// what the test-suite uses).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (choices, min, max) in &atoms {
            let n = min + rng.below((max - min + 1) as u128) as usize;
            for _ in 0..n {
                out.push(choices[rng.below(choices.len() as u128) as usize]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

/// One atom: the characters it may produce and its repetition bounds.
type Atom = (Vec<char>, usize, usize);

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<char> = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // A range `a-z` (a trailing `-` is a literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = if chars[i + 2] == '\\' {
                            i += 1;
                            unescape(chars[i + 2])
                        } else {
                            chars[i + 2]
                        };
                        set.extend((lo..=hi).filter(|c| c.is_ascii() || *c <= hi));
                        i += 3;
                    } else {
                        set.push(lo);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                set
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                vec![c]
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional repetition suffix.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("closing }")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bound"),
                            hi.trim().parse().expect("bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bound");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 16)
                }
                '+' => {
                    i += 1;
                    (1, 16)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(
            !choices.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        assert!(min <= max, "bad repetition in pattern {pattern:?}");
        atoms.push((choices, min, max));
    }
    atoms
}

/// Types with a full-range default strategy (shim for proptest's
/// `Arbitrary`).
pub trait ArbitraryValue {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for a primitive type.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_patterns_generate_matching_text() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..300 {
            let s = "[ -~\n\\\\]{0,300}".generate(&mut rng);
            assert!(s.len() <= 300);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        for _ in 0..50 {
            let s = "ab[0-9]{2}c?".generate(&mut rng);
            assert!(s.starts_with("ab"), "{s}");
            let digits: String = s[2..4].into();
            assert!(digits.chars().all(|c| c.is_ascii_digit()), "{s}");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = (-20i32..20).generate(&mut rng);
            assert!((-20..20).contains(&v));
            let u = (3u128..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = crate::prop_oneof![(0u32..5).prop_map(|v| v * 2), Just(99u32),];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 99 || (v % 2 == 0 && v < 10));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::from_name("recursive");
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }
}
