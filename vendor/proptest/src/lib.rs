//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors a minimal re-implementation of the API subset its
//! test suites use: the [`proptest!`] macro, integer-range / tuple / mapped
//! / recursive / one-of strategies, and the `collection` generators.
//!
//! Semantics intentionally kept from the original:
//!
//! * strategies are value generators driven by a deterministic RNG (seeded
//!   per test from the test's name, so failures reproduce);
//! * `prop_assume!` skips the current case;
//! * `ProptestConfig::with_cases` bounds the number of generated cases.
//!
//! Omitted (acceptable for an in-repo test harness): shrinking, failure
//! persistence files, `fork`, and the full `Arbitrary` machinery.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The subset of `proptest::prelude` the workspace uses.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `#[test]` function runs its body for a
/// number of generated cases (see [`test_runner::ProptestConfig`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}
