//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A collection-size specification (`From<Range<usize>>`, as in proptest).
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.0.start < self.0.end, "empty size range");
        self.0.start + rng.below((self.0.end - self.0.start) as u128) as usize
    }
}

/// Vectors of `size.sample()` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Maps of up to `size.sample()` entries (duplicate keys collapse).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_and_elements_in_range() {
        let mut rng = TestRng::from_name("vec");
        let s = vec(1u32..4, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..4).contains(&x)));
        }
    }

    #[test]
    fn btree_map_respects_bounds() {
        let mut rng = TestRng::from_name("btree");
        let s = btree_map(0u128..32, -50i64..50, 0..10);
        for _ in 0..200 {
            let m = s.generate(&mut rng);
            assert!(m.len() < 10);
            assert!(m.keys().all(|&k| k < 32));
            assert!(m.values().all(|&v| (-50..50).contains(&v)));
        }
    }
}
