//! `walshcheck` — command-line exact verifier for masked circuits.
//!
//! ```text
//! walshcheck check   <file.il | bench:NAME> [options]
//! walshcheck profile <file.il | bench:NAME> [--max-order D] [--glitch]
//! walshcheck info    <file.il | bench:NAME>
//! walshcheck dump  bench:NAME              # print the gadget as ILANG
//! walshcheck list                          # list built-in benchmarks
//!
//! walshcheck serve  --store DIR [--listen ADDR] [--checkpoint-every SECS]
//!                   [--runners N] [--max-retries N] [--retry-base-ms MS]
//!                   [--max-connections N] [--fsync-events always|interval|never]
//! walshcheck submit <file.il | bench:NAME> (--addr A | --store D)
//!                   [--job-timeout SECS] [options]
//! walshcheck status [ID] (--addr A | --store D)
//! walshcheck fetch  ID   (--addr A | --store D) [--wait]
//!
//! daemon-facing commands also accept `--timeout SECS` (client read/write
//! timeout, default 60).
//!
//! options:
//!   --property probing|ni|sni|pini   (default: sni)
//!   --order D                        (default: shares of secret 0 minus 1)
//!   --engine lil|map|mapi|fujita     (default: mapi)
//!   --mode rowwise|joint             (default: joint)
//!   --glitch                         glitch-extended (robust) probing model
//!   --threads N                      parallel verification (work-stealing)
//!   --time-limit SECS                abort with a partial verdict
//!   --no-prefilter                   disable the functional-support prefilter
//!   --no-cache                       disable prefix-shared convolution caching
//!   --cache-budget BYTES             per-worker prefix-cache budget
//!   --node-budget NODES              per-combination decision-diagram cap;
//!                                    over-budget combinations are quarantined
//!   --dd-backend private|shared      decision-diagram node store: per-worker
//!                                    arenas (private, the default) or one
//!                                    concurrent store all workers intern into
//!                                    (shared). Results are byte-identical
//!                                    either way; the default can also be set
//!                                    with WALSHCHECK_DD_BACKEND (which is how
//!                                    a `walshcheck serve` daemon is steered)
//!   --presift                        sift BDD variable order once before
//!                                    enumeration (witnesses still reported in
//!                                    the original input numbering)
//!   --dense-cut N                    spectral functions with support ≤ N take
//!                                    a flat array-butterfly WHT instead of
//!                                    the node-wise recursion (default 12; 0
//!                                    disables the dense fallback). A pure
//!                                    speed knob: reports are byte-identical
//!                                    at any cut
//!   --sift auto|rescue|off           where greedy variable sifting may run:
//!                                    `rescue` (default) only as a rescue
//!                                    rung, `auto` additionally as an
//!                                    in-sweep screening pass on large
//!                                    forests, `off` never. A pure speed
//!                                    knob: reports are byte-identical in
//!                                    every mode
//!   --rescue                         re-verify quarantined combinations after
//!                                    the sweep through an escalation ladder
//!                                    (doubled budgets, BDD sifting, engine
//!                                    fallback); upgrades Inconclusive verdicts
//!                                    when every quarantine resolves
//!   --no-rescue                      disable the rescue pass (the default)
//!   --rescue-attempts N              budget-doubling attempts on the first
//!                                    rescue rung (default 3)
//!   --rescue-budget BYTES            cap on any single rescue attempt's node
//!                                    budget (default 256 MiB)
//!   --checkpoint FILE                periodically persist run progress
//!   --checkpoint-every SECS          min seconds between writes (default 30;
//!                                    0 writes after every batch)
//!   --resume FILE                    resume from a checkpoint
//!   --minimize                       shrink the witness to a minimal one
//!   --progress                       live progress ticker on stderr
//!   --json                           machine-readable run report on stdout
//! ```
//!
//! Exit codes: `0` proved secure (full sweep), `1` violated, `2`
//! inconclusive (timeout / budget quarantines / lost workers), `3` usage or
//! I/O errors, `4` interrupted by SIGINT/SIGTERM (the run drained at a
//! batch boundary and flushed its checkpoint; rerun with `--resume` to
//! continue byte-identically).

use std::process::ExitCode;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

use walshcheck::daemon::{Client, Daemon, DaemonConfig};
use walshcheck::prelude::*;
use walshcheck_core::{run_report_json, Backend, Error};

/// Exit code for proved-secure full sweeps.
const EXIT_SECURE: u8 = 0;
/// Exit code for violated properties (a witness exists).
const EXIT_VIOLATED: u8 = 1;
/// Exit code for inconclusive runs: timed out, combinations quarantined by
/// the node budget, or workers lost. *Not* a proof either way.
const EXIT_INCONCLUSIVE: u8 = 2;
/// Exit code for usage and I/O errors.
const EXIT_ERROR: u8 = 3;
/// Exit code for runs cut short by SIGINT/SIGTERM: the sweep drained at a
/// batch boundary and the final checkpoint (if configured) was flushed, so
/// `--resume` continues exactly where the signal landed.
const EXIT_INTERRUPTED: u8 = 4;

/// Hand-rolled signal handling (no new dependencies): a `sigaction` FFI
/// binding installs a handler for SIGINT and SIGTERM that only flips the
/// async-signal-safe shutdown flag in `walshcheck::core::shutdown`. The
/// scheduler polls the flag at batch boundaries, drains in-flight batches,
/// flushes the checkpoint, and the verdict comes back
/// `Inconclusive(Interrupted)`.
#[cfg(unix)]
mod signals {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// Restart interrupted syscalls so in-flight checkpoint writes finish.
    const SA_RESTART: i32 = 0x1000_0000;

    /// Layout shared by glibc and musl on the 64-bit platforms we build
    /// for: handler pointer, 1024-bit signal mask, flags, restorer.
    #[repr(C)]
    struct SigAction {
        handler: usize,
        mask: [u64; 16],
        flags: i32,
        restorer: usize,
    }

    extern "C" {
        fn sigaction(signum: i32, act: *const SigAction, oldact: *mut SigAction) -> i32;
    }

    extern "C" fn handle(_signum: i32) {
        // A relaxed atomic store: the only async-signal-safe thing we do.
        walshcheck::core::shutdown::request();
    }

    /// Installs the graceful-shutdown handler for SIGINT and SIGTERM.
    /// Best-effort: a failed installation leaves the default disposition
    /// (immediate termination), never breaks the run itself.
    pub fn install() {
        let action = SigAction {
            handler: handle as *const () as usize,
            mask: [0; 16],
            flags: SA_RESTART,
            restorer: 0,
        };
        unsafe {
            let _ = sigaction(SIGINT, &action, std::ptr::null_mut());
            let _ = sigaction(SIGTERM, &action, std::ptr::null_mut());
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: walshcheck <check|info|dump|list|serve|submit|status|fetch> \
         [<file.il>|bench:NAME] [options]\n\
         run `walshcheck help` for the option list"
    );
    ExitCode::from(EXIT_ERROR)
}

fn load(target: &str) -> Result<Netlist, Error> {
    if let Some(name) = target.strip_prefix("bench:") {
        return Benchmark::from_name(name)
            .map(|b| b.netlist())
            .ok_or_else(|| {
                Error::Config(format!(
                    "unknown benchmark `{name}` (try `walshcheck list`)"
                ))
            });
    }
    let text =
        std::fs::read_to_string(target).map_err(|e| Error::Config(format!("{target}: {e}")))?;
    Ok(parse_ilang(&text)?)
}

struct Cli {
    property: String,
    order: Option<u32>,
    engine: EngineKind,
    mode: CheckMode,
    glitch: bool,
    threads: usize,
    time_limit: Option<std::time::Duration>,
    prefilter: bool,
    cache: bool,
    cache_budget: Option<usize>,
    node_budget: Option<usize>,
    backend: Option<Backend>,
    presift: bool,
    dense_cut: Option<u32>,
    sift: Option<SiftMode>,
    rescue: bool,
    rescue_attempts: Option<u32>,
    rescue_budget: Option<usize>,
    checkpoint: Option<String>,
    checkpoint_every: Duration,
    resume: Option<String>,
    minimize: bool,
    progress: bool,
    json: bool,
}

fn parse_options(args: &[String]) -> Result<Cli, Error> {
    let mut cli = Cli {
        property: "sni".into(),
        order: None,
        engine: EngineKind::Mapi,
        mode: CheckMode::Joint,
        glitch: false,
        threads: 1,
        time_limit: None,
        prefilter: true,
        cache: true,
        cache_budget: None,
        node_budget: None,
        backend: None,
        presift: false,
        dense_cut: None,
        sift: None,
        rescue: false,
        rescue_attempts: None,
        rescue_budget: None,
        checkpoint: None,
        checkpoint_every: Duration::from_secs(30),
        resume: None,
        minimize: false,
        progress: false,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| Error::Config(format!("{name} needs a value")))
        };
        let bad = |name: &str| Error::Config(format!("bad {name}"));
        match arg.as_str() {
            "--property" => cli.property = value("--property")?.to_lowercase(),
            "--order" => cli.order = Some(value("--order")?.parse().map_err(|_| bad("--order"))?),
            "--engine" => {
                cli.engine = match value("--engine")?.to_lowercase().as_str() {
                    "lil" => EngineKind::Lil,
                    "map" => EngineKind::Map,
                    "mapi" => EngineKind::Mapi,
                    "fujita" => EngineKind::Fujita,
                    other => return Err(Error::Config(format!("unknown engine `{other}`"))),
                }
            }
            "--mode" => {
                cli.mode = match value("--mode")?.to_lowercase().as_str() {
                    "rowwise" | "row-wise" => CheckMode::RowWise,
                    "joint" => CheckMode::Joint,
                    other => return Err(Error::Config(format!("unknown mode `{other}`"))),
                }
            }
            "--glitch" => cli.glitch = true,
            "--threads" => {
                cli.threads = value("--threads")?.parse().map_err(|_| bad("--threads"))?
            }
            "--time-limit" => {
                let secs: u64 = value("--time-limit")?
                    .parse()
                    .map_err(|_| bad("--time-limit"))?;
                cli.time_limit = Some(std::time::Duration::from_secs(secs));
            }
            "--no-prefilter" => cli.prefilter = false,
            "--no-cache" => cli.cache = false,
            "--cache-budget" => {
                cli.cache_budget = Some(
                    value("--cache-budget")?
                        .parse()
                        .map_err(|_| bad("--cache-budget"))?,
                )
            }
            "--node-budget" => {
                cli.node_budget = Some(
                    value("--node-budget")?
                        .parse()
                        .map_err(|_| bad("--node-budget"))?,
                )
            }
            "--dd-backend" => {
                let name = value("--dd-backend")?.to_lowercase();
                cli.backend = Some(Backend::parse(&name).ok_or_else(|| {
                    Error::Config(format!(
                        "unknown backend `{name}` (expected private or shared)"
                    ))
                })?);
            }
            "--presift" => cli.presift = true,
            "--dense-cut" => {
                cli.dense_cut = Some(
                    value("--dense-cut")?
                        .parse()
                        .map_err(|_| bad("--dense-cut"))?,
                )
            }
            "--sift" => {
                let name = value("--sift")?.to_lowercase();
                cli.sift = Some(SiftMode::parse(&name).ok_or_else(|| {
                    Error::Config(format!(
                        "unknown sift mode `{name}` (expected auto, rescue or off)"
                    ))
                })?);
            }
            "--rescue" => cli.rescue = true,
            "--no-rescue" => cli.rescue = false,
            "--rescue-attempts" => {
                cli.rescue_attempts = Some(
                    value("--rescue-attempts")?
                        .parse()
                        .map_err(|_| bad("--rescue-attempts"))?,
                )
            }
            "--rescue-budget" => {
                cli.rescue_budget = Some(
                    value("--rescue-budget")?
                        .parse()
                        .map_err(|_| bad("--rescue-budget"))?,
                )
            }
            "--checkpoint" => cli.checkpoint = Some(value("--checkpoint")?),
            "--checkpoint-every" => {
                let secs: u64 = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| bad("--checkpoint-every"))?;
                cli.checkpoint_every = Duration::from_secs(secs);
            }
            "--resume" => cli.resume = Some(value("--resume")?),
            "--minimize" => cli.minimize = true,
            "--progress" => cli.progress = true,
            "--json" => cli.json = true,
            other => return Err(Error::Config(format!("unknown option `{other}`"))),
        }
    }
    Ok(cli)
}

/// Drains the observer channel; with `ticker`, renders a live progress line
/// on stderr. Returns the collected engine-phase timings for the JSON
/// report.
fn aggregate_events(rx: Receiver<ProgressEvent>, ticker: bool) -> Vec<(String, Duration)> {
    let mut phases = Vec::new();
    let mut total: u64 = 0;
    let mut checked: u64 = 0;
    let mut pruned: u64 = 0;
    let mut violations: u64 = 0;
    let mut last_tick = Instant::now();
    let mut ticked = false;
    for event in rx {
        match event {
            ProgressEvent::RunStarted {
                sites, total: t, ..
            } => {
                total = t;
                if ticker {
                    eprintln!("progress: {sites} sites, {t} combinations to check");
                }
            }
            ProgressEvent::BatchFinished {
                checked: c,
                pruned: p,
                ..
            } => {
                checked += c;
                pruned += p;
                if ticker && last_tick.elapsed() >= Duration::from_millis(100) {
                    eprint!("\rprogress: {checked}/{total} combinations, {pruned} pruned, {violations} violation(s)");
                    ticked = true;
                    last_tick = Instant::now();
                }
            }
            ProgressEvent::ViolationFound { index, .. } => {
                violations += 1;
                if ticker {
                    if ticked {
                        eprintln!();
                        ticked = false;
                    }
                    eprintln!("progress: violation at enumeration index {index}");
                }
            }
            ProgressEvent::CombinationQuarantined { index, reason, .. } if ticker => {
                if ticked {
                    eprintln!();
                    ticked = false;
                }
                eprintln!("progress: combination {index} quarantined ({reason})");
            }
            ProgressEvent::RescueStarted { quarantined } if ticker => {
                if ticked {
                    eprintln!();
                    ticked = false;
                }
                eprintln!("progress: rescuing {quarantined} quarantined combination(s)");
            }
            ProgressEvent::RescueAttempted { index, attempt } if ticker => {
                eprintln!(
                    "progress: rescue #{index}: {} rung ({}, budget {}) → {}",
                    attempt.rung,
                    attempt.engine,
                    attempt
                        .node_budget
                        .map_or_else(|| "none".into(), |n| n.to_string()),
                    attempt.outcome
                );
            }
            ProgressEvent::RescueResolved { index, resolution } if ticker => {
                eprintln!("progress: rescue #{index} resolved: {resolution}");
            }
            ProgressEvent::RescueFinished {
                attempted,
                resolved,
                unresolved,
            } if ticker => {
                eprintln!(
                    "progress: rescue pass done — {attempted} attempted, \
                     {resolved} resolved, {unresolved} unresolved"
                );
            }
            ProgressEvent::CheckpointWritten { path, combinations } if ticker => {
                if ticked {
                    eprintln!();
                    ticked = false;
                }
                eprintln!(
                    "progress: checkpoint written to {} ({combinations} combinations done)",
                    path.display()
                );
            }
            ProgressEvent::PhaseTiming { phase, elapsed } => {
                phases.push((phase.to_string(), elapsed));
            }
            ProgressEvent::RunFinished { stats } if ticker => {
                if ticked {
                    eprintln!();
                    ticked = false;
                }
                eprintln!(
                    "progress: done — {} combinations ({} pruned) in {:.3?}",
                    stats.combinations, stats.pruned, stats.total_time
                );
            }
            _ => {}
        }
    }
    if ticked {
        eprintln!();
    }
    phases
}

/// Builds the serializable [`JobSpec`] the CLI flags describe — shared by
/// `check` (fed into the [`Session`] builder) and `submit` (sent to the
/// daemon as the job's identity).
fn spec_from_cli(netlist: &Netlist, cli: &Cli) -> Result<JobSpec, Error> {
    let d = cli.order.unwrap_or_else(|| {
        let shares = netlist.shares_of(walshcheck::circuit::SecretId(0)).len() as u32;
        shares.saturating_sub(1).max(1)
    });
    let property = match cli.property.as_str() {
        "probing" => Property::Probing(d),
        "ni" => Property::Ni(d),
        "sni" => Property::Sni(d),
        "pini" => Property::Pini(d),
        other => return Err(Error::Config(format!("unknown property `{other}`"))),
    };
    let mut builder = VerifyOptions::builder()
        .engine(cli.engine)
        .mode(cli.mode)
        .prefilter(cli.prefilter)
        .cache(cli.cache);
    if let Some(bytes) = cli.cache_budget {
        builder = builder.cache_budget(bytes);
    }
    if let Some(limit) = cli.time_limit {
        builder = builder.time_limit(limit);
    }
    if cli.glitch {
        builder = builder.probe_model(ProbeModel::Glitch);
    }
    if let Some(nodes) = cli.node_budget {
        builder = builder.node_budget(nodes);
    }
    // Absent --dd-backend, the builder keeps the WALSHCHECK_DD_BACKEND /
    // private default, which is also what a daemon applies to submissions.
    if let Some(backend) = cli.backend {
        builder = builder.dd_backend(backend);
    }
    if cli.presift {
        builder = builder.presift(true);
    }
    if let Some(cut) = cli.dense_cut {
        builder = builder.dense_cut(cut);
    }
    if let Some(mode) = cli.sift {
        builder = builder.sift(mode);
    }
    let mut spec = JobSpec::new(property);
    spec.options = builder.build();
    spec.threads = cli.threads.max(1);
    spec.rescue.enabled = cli.rescue;
    if let Some(attempts) = cli.rescue_attempts {
        spec.rescue.attempts = attempts;
    }
    if let Some(bytes) = cli.rescue_budget {
        spec.rescue.budget_bytes = bytes;
    }
    Ok(spec)
}

fn run_check(target: &str, args: &[String]) -> Result<ExitCode, Error> {
    let netlist = load(target)?;
    let cli = parse_options(args)?;
    let spec = spec_from_cli(&netlist, &cli)?;
    let property = spec.property;
    let options = spec.options.clone();

    let mut session = Session::new(&netlist)?
        .property(property)
        .options(options.clone())
        .threads(spec.threads)
        .rescue(spec.rescue.enabled)
        .rescue_attempts(spec.rescue.attempts)
        .rescue_budget(spec.rescue.budget_bytes);
    if let Some(path) = &cli.checkpoint {
        session = session.checkpoint_to(path, cli.checkpoint_every);
    }
    let resumed = cli.resume.is_some();
    if let Some(path) = &cli.resume {
        session = session.resume_from(path)?;
    }
    // The observer feeds both the --progress ticker and the phase timings
    // of the --json report.
    let aggregator = if cli.progress || cli.json {
        let (observer, rx) = ChannelObserver::new();
        session = session.observer(Arc::new(observer));
        let ticker = cli.progress;
        Some(std::thread::spawn(move || aggregate_events(rx, ticker)))
    } else {
        None
    };

    let mut verdict = session.run();
    if cli.minimize {
        if let Some(w) = verdict.witness.take() {
            verdict.witness = Some(
                session
                    .verifier_mut()
                    .minimize_witness(&w, property, &options),
            );
        }
    }
    let spec = session.spec().clone();
    // Dropping the session drops the channel sender, letting the
    // aggregator thread drain out and finish.
    drop(session);
    let phases = match aggregator {
        Some(handle) => handle.join().expect("progress aggregator panicked"),
        None => Vec::new(),
    };

    if cli.json {
        println!(
            "{}",
            run_report_json(&netlist, &verdict, &spec, &phases, resumed)
        );
    } else {
        println!("{}: {verdict}", netlist.name);
        if let Some(w) = &verdict.witness {
            let probes: Vec<&str> = w
                .combination
                .iter()
                .map(|p| netlist.wire_name(p.wire()))
                .collect();
            println!("  witness probes: {probes:?}");
            println!("  {}", w.reason);
            if let Some(c) = w.coefficient {
                println!("  leaking correlation coefficient: {c}");
            }
        }
        println!(
            "  {} combinations ({} pruned), {} rows, {:.3?} total \
             ({:.3?} convolution, {:.3?} verification){}",
            verdict.stats.combinations,
            verdict.stats.pruned,
            verdict.stats.rows_checked,
            verdict.stats.total_time,
            verdict.stats.convolution_time,
            verdict.stats.verification_time,
            if verdict.stats.timed_out {
                " — TIMED OUT, partial result"
            } else if verdict.stats.interrupted {
                " — INTERRUPTED, partial result (rerun with --resume)"
            } else {
                ""
            }
        );
        if let Some(r) = &verdict.recovery {
            println!(
                "  rescue pass: {} attempted, {} resolved, {} unresolved",
                r.attempted, r.resolved, r.unresolved
            );
            for c in r.combinations.iter().take(8) {
                println!(
                    "    #{} ({}) → {} after {} attempt(s)",
                    c.index,
                    c.reason,
                    c.resolution,
                    c.attempts.len()
                );
            }
            if r.combinations.len() > 8 {
                println!("    … and {} more", r.combinations.len() - 8);
            }
        }
        if !verdict.skipped.is_empty() {
            println!(
                "  {} combination(s) quarantined (not checked):",
                verdict.skipped.len()
            );
            for s in verdict.skipped.iter().take(8) {
                let probes: Vec<&str> = s
                    .combination
                    .iter()
                    .map(|p| netlist.wire_name(p.wire()))
                    .collect();
                println!("    #{} {probes:?} — {}", s.index, s.reason);
            }
            if verdict.skipped.len() > 8 {
                println!("    … and {} more", verdict.skipped.len() - 8);
            }
        }
        if verdict.stats.worker_failures > 0 {
            println!(
                "  {} worker(s) lost mid-run; their claimed work was not rechecked",
                verdict.stats.worker_failures
            );
        }
        if verdict.stats.cache_hits + verdict.stats.cache_misses > 0 {
            println!(
                "  prefix cache: {} hits, {} misses, {} evictions, {} peak bytes",
                verdict.stats.cache_hits,
                verdict.stats.cache_misses,
                verdict.stats.cache_evictions,
                verdict.stats.cache_peak_bytes
            );
        }
    }
    // The exit code mirrors the three-valued outcome: an inconclusive run
    // is *not* reported as secure, and scripts must treat 2 as "unknown"
    // and 4 as "interrupted, resumable".
    Ok(ExitCode::from(match verdict.outcome {
        Outcome::Secure => EXIT_SECURE,
        Outcome::Violated => EXIT_VIOLATED,
        Outcome::Inconclusive(IncompleteReason::Interrupted) => EXIT_INTERRUPTED,
        Outcome::Inconclusive(_) => EXIT_INCONCLUSIVE,
    }))
}

fn run_profile(target: &str, args: &[String]) -> Result<ExitCode, Error> {
    let netlist = load(target)?;
    let mut max_order: u32 = 0;
    let mut glitch = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-order" => {
                max_order = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| Error::Config("bad --max-order".into()))?
            }
            "--glitch" => glitch = true,
            other => return Err(Error::Config(format!("unknown option `{other}`"))),
        }
    }
    if max_order == 0 {
        let shares = netlist.shares_of(walshcheck::circuit::SecretId(0)).len() as u32;
        max_order = shares.saturating_sub(1).max(1);
    }
    let mut builder = VerifyOptions::builder();
    if glitch {
        builder = builder.probe_model(ProbeModel::Glitch);
    }
    let options = builder.build();
    // One session across the whole sweep: the unfolding is reused by every
    // (order, property) cell.
    let mut session = Session::new(&netlist)?.options(options);
    println!(
        "security profile of {}{}:",
        netlist.name,
        if glitch { " (glitch-extended)" } else { "" }
    );
    println!(
        "{:>6} {:>9} {:>7} {:>7} {:>7}",
        "order", "probing", "NI", "SNI", "PINI"
    );
    for d in 1..=max_order {
        let mut row = Vec::new();
        for property in [
            Property::Probing(d),
            Property::Ni(d),
            Property::Sni(d),
            Property::Pini(d),
        ] {
            session = session.property(property);
            let v = session.run();
            row.push(match v.outcome {
                Outcome::Secure => "yes",
                Outcome::Violated => "NO",
                Outcome::Inconclusive(_) => "?",
            });
        }
        println!(
            "{:>6} {:>9} {:>7} {:>7} {:>7}",
            d, row[0], row[1], row[2], row[3]
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn run_info(target: &str) -> Result<ExitCode, Error> {
    let n = load(target)?;
    let st = walshcheck::circuit::stats::stats(&n)?;
    println!("module {}", n.name);
    println!("  wires:   {}", n.num_wires());
    println!(
        "  cells:   {} ({} non-linear, {} xor, {} reg, {} buf/not; depth {})",
        n.num_cells(),
        st.nonlinear_gates,
        st.linear_gates,
        st.registers,
        st.unary_gates,
        st.depth
    );
    for (i, name) in n.secret_names.iter().enumerate() {
        let shares = n.shares_of(walshcheck::circuit::SecretId(i as u32)).len();
        println!("  secret `{name}`: {shares} shares");
    }
    println!("  randoms: {}", n.randoms().len());
    for (i, name) in n.output_names.iter().enumerate() {
        let shares = n
            .output_shares_of(walshcheck::circuit::OutputId(i as u32))
            .len();
        println!("  output `{name}`: {shares} shares");
    }
    Ok(ExitCode::SUCCESS)
}

/// Where the daemon-facing subcommands find `walshcheckd`: an explicit
/// `--addr`, or a `--store` whose `daemon.addr` file a running daemon wrote
/// at bind time.
struct DaemonTarget {
    addr: Option<String>,
    store: Option<String>,
    timeout: Option<u64>,
}

/// Pulls `--addr`/`--store`/`--timeout` out of `args`, returning the
/// remainder for the subcommand's own option parser.
fn split_daemon_target(args: &[String]) -> Result<(DaemonTarget, Vec<String>), Error> {
    let mut target = DaemonTarget {
        addr: None,
        store: None,
        timeout: None,
    };
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| Error::Config(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => target.addr = Some(value("--addr")?),
            "--store" => target.store = Some(value("--store")?),
            "--timeout" => {
                target.timeout = Some(
                    value("--timeout")?
                        .parse()
                        .map_err(|_| Error::Config("bad --timeout".into()))?,
                )
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok((target, rest))
}

fn daemon_client(target: &DaemonTarget) -> Result<Client, Error> {
    let addr = if let Some(addr) = &target.addr {
        addr.clone()
    } else if let Some(store) = &target.store {
        let path = std::path::Path::new(store).join("daemon.addr");
        std::fs::read_to_string(&path)
            .map_err(|e| {
                Error::Config(format!(
                    "{}: {e} (is a daemon serving this store?)",
                    path.display()
                ))
            })?
            .trim()
            .to_string()
    } else {
        return Err(Error::Config(
            "need --addr HOST:PORT or --store DIR to reach the daemon".into(),
        ));
    };
    // A few quick connect retries ride over a daemon that is mid-restart.
    let mut client = Client::new(addr).connect_retries(3, Duration::from_millis(100));
    if let Some(secs) = target.timeout {
        client = client.timeout(Duration::from_secs(secs));
    }
    Ok(client)
}

/// `walshcheck serve --store DIR [--listen ADDR] [--checkpoint-every SECS]
/// [--max-body BYTES] [--runners N] [--max-retries N] [--retry-base-ms MS]
/// [--max-connections N] [--fsync-events always|interval|never]` — runs
/// `walshcheckd` until SIGINT/SIGTERM, then
/// drains gracefully (every in-flight job checkpoints, is marked
/// `interrupted`, and auto-resumes on the next start).
fn run_serve(args: &[String]) -> Result<ExitCode, Error> {
    let mut store: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut max_body: Option<usize> = None;
    let mut runners: Option<usize> = None;
    let mut max_retries: Option<u32> = None;
    let mut retry_base_ms: Option<u64> = None;
    let mut max_connections: Option<usize> = None;
    let mut fsync_events: Option<walshcheck::daemon::store::FsyncEvents> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| Error::Config(format!("{name} needs a value")))
        };
        let bad = |name: &str| Error::Config(format!("bad {name}"));
        match arg.as_str() {
            "--store" => store = Some(value("--store")?),
            "--listen" => listen = Some(value("--listen")?),
            "--checkpoint-every" => {
                checkpoint_every = Some(
                    value("--checkpoint-every")?
                        .parse()
                        .map_err(|_| bad("--checkpoint-every"))?,
                )
            }
            "--max-body" => {
                max_body = Some(
                    value("--max-body")?
                        .parse()
                        .map_err(|_| bad("--max-body"))?,
                )
            }
            "--runners" => {
                runners = Some(
                    value("--runners")?
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| bad("--runners"))?,
                )
            }
            "--max-retries" => {
                max_retries = Some(
                    value("--max-retries")?
                        .parse()
                        .map_err(|_| bad("--max-retries"))?,
                )
            }
            "--retry-base-ms" => {
                retry_base_ms = Some(
                    value("--retry-base-ms")?
                        .parse()
                        .map_err(|_| bad("--retry-base-ms"))?,
                )
            }
            "--max-connections" => {
                max_connections = Some(
                    value("--max-connections")?
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| bad("--max-connections"))?,
                )
            }
            "--fsync-events" => {
                fsync_events = Some(
                    walshcheck::daemon::store::FsyncEvents::parse(&value("--fsync-events")?)
                        .ok_or_else(|| bad("--fsync-events"))?,
                )
            }
            other => return Err(Error::Config(format!("unknown option `{other}`"))),
        }
    }
    let store = store.ok_or_else(|| Error::Config("serve needs --store DIR".into()))?;
    let mut config = DaemonConfig::new(store);
    if let Some(listen) = listen {
        config.listen = listen;
    }
    if let Some(secs) = checkpoint_every {
        config.checkpoint_every = Duration::from_secs(secs);
    }
    if let Some(bytes) = max_body {
        config.max_body = bytes;
    }
    if let Some(n) = runners {
        config.runners = n;
    }
    if let Some(n) = max_retries {
        config.max_retries = n;
    }
    if let Some(ms) = retry_base_ms {
        config.retry_base = Duration::from_millis(ms);
    }
    if let Some(n) = max_connections {
        config.max_connections = n;
    }
    if let Some(policy) = fsync_events {
        config.fsync_events = policy;
    }
    let daemon = Daemon::bind(&config).map_err(|e| Error::Config(format!("serve: {e}")))?;
    println!("walshcheckd listening on {}", daemon.addr());
    daemon
        .run()
        .map_err(|e| Error::Config(format!("serve: {e}")))?;
    Ok(ExitCode::SUCCESS)
}

/// `walshcheck submit <file.il|bench:NAME> (--addr A | --store D)
/// [check options]` — sends the netlist + spec to the daemon and prints the
/// `{"id","state","cached"}` acknowledgement. Resubmitting an identical
/// `(netlist, identity)` pair reports `"cached":true` once the first run
/// finished: the artifact is served from the store, never recomputed.
fn run_submit(target: &str, args: &[String]) -> Result<ExitCode, Error> {
    let (daemon_target, rest) = split_daemon_target(args)?;
    // `--job-timeout` is submit-only (a deadline the daemon's supervisor
    // enforces), so it is peeled off before the shared option parser.
    let mut job_timeout: Option<u64> = None;
    let mut check_args = Vec::with_capacity(rest.len());
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--job-timeout" {
            job_timeout = Some(
                it.next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s >= 1)
                    .ok_or_else(|| Error::Config("bad --job-timeout".into()))?,
            );
        } else {
            check_args.push(arg.clone());
        }
    }
    let cli = parse_options(&check_args)?;
    for (flag, set) in [
        ("--checkpoint", cli.checkpoint.is_some()),
        ("--resume", cli.resume.is_some()),
        ("--minimize", cli.minimize),
        ("--progress", cli.progress),
        ("--json", cli.json),
    ] {
        if set {
            return Err(Error::Config(format!(
                "{flag} is managed by the daemon and not valid with submit"
            )));
        }
    }
    let netlist = load(target)?;
    let mut spec = spec_from_cli(&netlist, &cli)?;
    spec.timeout_secs = job_timeout;
    let client = daemon_client(&daemon_target)?;
    let response = client
        .submit(&spec.to_json().to_canonical(), &write_ilang(&netlist))
        .map_err(|e| Error::Config(format!("submit: {e}")))?;
    println!("{}", response.text());
    if response.status >= 400 {
        return Err(Error::Config(format!(
            "daemon rejected the submission (HTTP {})",
            response.status
        )));
    }
    Ok(ExitCode::SUCCESS)
}

/// `walshcheck status [ID] (--addr A | --store D)` — one job's record, or
/// the whole list without an ID.
fn run_status(args: &[String]) -> Result<ExitCode, Error> {
    let (id, rest) = match args.first() {
        Some(first) if !first.starts_with("--") => (Some(first.clone()), &args[1..]),
        _ => (None, args),
    };
    let (daemon_target, leftover) = split_daemon_target(rest)?;
    if let Some(other) = leftover.first() {
        return Err(Error::Config(format!("unknown option `{other}`")));
    }
    let client = daemon_client(&daemon_target)?;
    let path = match &id {
        Some(id) => format!("/v1/jobs/{id}"),
        None => "/v1/jobs".into(),
    };
    let response = client
        .get(&path)
        .map_err(|e| Error::Config(format!("status: {e}")))?;
    println!("{}", response.text());
    if response.status >= 400 {
        return Err(Error::Config(format!(
            "daemon returned HTTP {}",
            response.status
        )));
    }
    Ok(ExitCode::SUCCESS)
}

/// `walshcheck fetch ID (--addr A | --store D) [--wait]` — prints the
/// job's walshcheck-report/5 artifact (canonical bytes) and exits with the
/// same code the equivalent `check` run would have: 0 secure, 1 violated,
/// 2 inconclusive. With `--wait` the command long-polls the events
/// endpoint until the job reaches a terminal state instead of failing on
/// a still-running job.
fn run_fetch(id: &str, args: &[String]) -> Result<ExitCode, Error> {
    let (daemon_target, leftover) = split_daemon_target(args)?;
    let mut wait = false;
    for other in &leftover {
        if other == "--wait" {
            wait = true;
        } else {
            return Err(Error::Config(format!("unknown option `{other}`")));
        }
    }
    let client = daemon_client(&daemon_target)?;
    if wait {
        // One long-poll per iteration; each returns early on a terminal
        // state, so the loop spins at most once per server-side wait cap.
        let mut since = 0usize;
        loop {
            let response = client
                .events(id, since, 25_000)
                .map_err(|e| Error::Config(format!("fetch: {e}")))?;
            let body = response.text();
            if response.status >= 400 {
                return Err(Error::Config(format!(
                    "daemon returned HTTP {}: {body}",
                    response.status
                )));
            }
            let doc = walshcheck_core::json::parse(&body)
                .map_err(|e| Error::Config(format!("fetch: events body: {e}")))?;
            let state = doc
                .get("state")
                .and_then(|s| s.as_str().map(str::to_owned))
                .unwrap_or_default();
            if !matches!(state.as_str(), "queued" | "running") {
                break;
            }
            since = doc
                .get("next")
                .and_then(walshcheck_core::json::Json::as_u64)
                .map(|n| n as usize)
                .unwrap_or(since);
        }
    }
    let response = client
        .get(&format!("/v1/jobs/{id}/report"))
        .map_err(|e| Error::Config(format!("fetch: {e}")))?;
    let body = response.text();
    if response.status >= 400 {
        return Err(Error::Config(format!(
            "daemon returned HTTP {}: {body}",
            response.status
        )));
    }
    println!("{body}");
    let outcome = walshcheck_core::json::parse(&body)
        .ok()
        .and_then(|doc| {
            doc.get("result")
                .and_then(|r| r.get("outcome"))
                .and_then(|o| o.as_str().map(str::to_owned))
        })
        .ok_or_else(|| Error::Config("artifact carries no result.outcome".into()))?;
    Ok(ExitCode::from(match outcome.as_str() {
        "secure" => EXIT_SECURE,
        "violated" => EXIT_VIOLATED,
        _ => EXIT_INCONCLUSIVE,
    }))
}

fn main() -> ExitCode {
    #[cfg(unix)]
    signals::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") if args.len() >= 2 => run_check(&args[1], &args[2..]),
        Some("profile") if args.len() >= 2 => run_profile(&args[1], &args[2..]),
        Some("info") if args.len() >= 2 => run_info(&args[1]),
        Some("serve") => run_serve(&args[1..]),
        Some("submit") if args.len() >= 2 => run_submit(&args[1], &args[2..]),
        Some("status") => run_status(&args[1..]),
        Some("fetch") if args.len() >= 2 => run_fetch(&args[1], &args[2..]),
        Some("dump") if args.len() >= 2 => load(&args[1]).map(|n| {
            print!("{}", write_ilang(&n));
            ExitCode::SUCCESS
        }),
        Some("list") => {
            for b in Benchmark::all() {
                println!("bench:{b}");
            }
            for b in walshcheck::gadgets::Benchmark::extensions() {
                println!("bench:{b}  (extension)");
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("help") | Some("--help") | Some("-h") => {
            println!(
                "walshcheck — exact spectral verification of probing security\n\n\
                 subcommands:\n\
                 \x20 check <file.il|bench:NAME> [options]   verify a property\n\
                 \x20 info  <file.il|bench:NAME>             print port summary\n\
                 \x20 dump  <file.il|bench:NAME>             re-emit annotated ILANG\n\
                 \x20 list                                   list built-in benchmarks\n\
                 \x20 serve --store DIR [--listen ADDR] [--checkpoint-every SECS]\n\
                 \x20       [--runners N] [--max-retries N] [--retry-base-ms MS]\n\
                 \x20       [--max-connections N] [--fsync-events always|interval|never]\n\
\x20                                        run the walshcheckd daemon\n\
                 \x20 submit <file.il|bench:NAME> (--addr A|--store D)\n\
                 \x20        [--job-timeout SECS] [options]  queue a job on the daemon\n\
                 \x20 status [ID] (--addr A|--store D)       job status (all without ID)\n\
                 \x20 fetch  ID   (--addr A|--store D) [--wait]\n\
                 \x20                                        print the report/5 artifact\n\
                 \x20 (daemon commands also take --timeout SECS for the client)\n\n\
                 options: --property probing|ni|sni|pini  --order D\n\
                 \x20        --engine lil|map|mapi|fujita    --mode rowwise|joint\n\
                 \x20        --glitch  --threads N  --time-limit SECS  --no-prefilter\n\
                 \x20        --no-cache  --cache-budget BYTES  --node-budget NODES\n\
                 \x20        --dd-backend private|shared  --presift\n\
                 \x20        --dense-cut N  --sift auto|rescue|off\n\
                 \x20        --rescue  --no-rescue  --rescue-attempts N  --rescue-budget BYTES\n\
                 \x20        --checkpoint FILE  --checkpoint-every SECS  --resume FILE\n\
                 \x20        --minimize  --progress  --json\n\n\
                 exit codes: 0 secure, 1 violated, 2 inconclusive, 3 usage/io error,\n\
                 \x20           4 interrupted by signal (resume with --resume)"
            );
            Ok(ExitCode::SUCCESS)
        }
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}
