//! # walshcheck — ADD-based spectral verification of probing security
//!
//! A from-scratch reproduction of *ADD-based Spectral Analysis of Probing
//! Security* (Molteni, Zaccaria, Ciriani — DATE 2022): exact verification of
//! probing security and (strong / probe-isolating) non-interference of
//! masked circuits via Walsh spectra stored in hash maps and Algebraic
//! Decision Diagrams.
//!
//! This facade crate re-exports the workspace components:
//!
//! * [`dd`] — BDD/ADD package, dyadic arithmetic, Walsh transforms;
//! * [`circuit`] — annotated netlists, ILANG front-end, unfolding;
//! * [`gadgets`] — the benchmark gadget generators (ISW, DOM, TI, Trichina,
//!   Keccak χ, refresh, composition);
//! * [`core`] — the verifier engines (LIL/MAP/MAPI/FUJITA), the exhaustive
//!   oracle, the heuristic checker and uniformity analysis.
//!
//! ## Quickstart
//!
//! ```
//! use walshcheck::prelude::*;
//!
//! # fn main() -> Result<(), walshcheck::core::Error> {
//! let dom1 = Benchmark::Dom(1).netlist();
//! let verdict = Session::new(&dom1)?.property(Property::Sni(1)).run();
//! assert!(verdict.secure);
//! # Ok(())
//! # }
//! ```
//!
//! [`Session`](core::Session) is the front door: it owns the prepared
//! verifier, exposes the builder-style run configuration (engine, mode,
//! threads, observer), and drives the work-stealing parallel scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use walshcheck_circuit as circuit;
pub use walshcheck_core as core;
pub use walshcheck_daemon as daemon;
pub use walshcheck_dd as dd;
pub use walshcheck_gadgets as gadgets;

/// The most common imports in one place.
pub mod prelude {
    pub use walshcheck_circuit::builder::NetlistBuilder;
    pub use walshcheck_circuit::glitch::ProbeModel;
    pub use walshcheck_circuit::ilang::{parse_ilang, write_ilang};
    pub use walshcheck_circuit::netlist::Netlist;
    pub use walshcheck_core::checkpoint::CheckpointConfig;
    pub use walshcheck_core::engine::{
        EngineKind, SiftMode, Verifier, VerifyOptions, VerifyOptionsBuilder,
    };
    pub use walshcheck_core::error::Error;
    pub use walshcheck_core::job::{netlist_sha256, Job, JobSpec};
    pub use walshcheck_core::observe::{
        ChannelObserver, EnginePhase, ProgressEvent, ProgressObserver,
    };
    pub use walshcheck_core::property::{
        CheckMode, CheckStats, IncompleteReason, Outcome, Property, SkippedCombination, Verdict,
        Witness,
    };
    pub use walshcheck_core::recover::{
        RecoveryReport, RescueAttempt, RescueAttemptOutcome, RescueConfig, RescueResolution,
        RescueRung, RescuedCombination,
    };
    pub use walshcheck_core::session::{Session, WitnessSearch};
    pub use walshcheck_gadgets::suite::Benchmark;
}
